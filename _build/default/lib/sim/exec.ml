open Ifko_machine

type ret_val = Rint of int | Rfp of float

type result = {
  ret : ret_val option;
  cycles : float;
  instr_count : int;
  uop_count : int;
}

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

(* ---------- architectural state ---------- *)

type state = {
  mutable gpr : int array;
  mutable gcap : int;
  mutable xmm : Bytes.t;  (* 16 bytes per register *)
  mutable xcap : int;
  memm : Bytes.t;
}

(* Physical registers occupy slots 0..7; virtual register [i] lives in
   slot [8+i], so allocated and unallocated code both run. *)
let slot (r : Reg.t) = if r.Reg.phys then r.Reg.id else r.Reg.id + 8

let ensure_gpr st n =
  if n >= st.gcap then begin
    let cap = max (n + 1) (2 * st.gcap) in
    let a = Array.make cap 0 in
    Array.blit st.gpr 0 a 0 st.gcap;
    st.gpr <- a;
    st.gcap <- cap
  end

let ensure_xmm st n =
  if n >= st.xcap then begin
    let cap = max (n + 1) (2 * st.xcap) in
    let b = Bytes.make (cap * 16) '\000' in
    Bytes.blit st.xmm 0 b 0 (st.xcap * 16);
    st.xmm <- b;
    st.xcap <- cap
  end

let gget st r =
  let i = slot r in
  ensure_gpr st i;
  st.gpr.(i)

let gset st r v =
  let i = slot r in
  ensure_gpr st i;
  st.gpr.(i) <- v

let round32 x = Int32.float_of_bits (Int32.bits_of_float x)

let xget64 st r lane =
  let i = slot r in
  ensure_xmm st i;
  Int64.float_of_bits (Bytes.get_int64_le st.xmm ((i * 16) + (lane * 8)))

let xset64 st r lane v =
  let i = slot r in
  ensure_xmm st i;
  Bytes.set_int64_le st.xmm ((i * 16) + (lane * 8)) (Int64.bits_of_float v)

let xget32 st r lane =
  let i = slot r in
  ensure_xmm st i;
  Int32.float_of_bits (Bytes.get_int32_le st.xmm ((i * 16) + (lane * 4)))

let xset32 st r lane v =
  let i = slot r in
  ensure_xmm st i;
  Bytes.set_int32_le st.xmm ((i * 16) + (lane * 4)) (Int32.bits_of_float v)

let xlane st sz r lane =
  match sz with Instr.D -> xget64 st r lane | Instr.S -> xget32 st r lane

let set_xlane st sz r lane v =
  match sz with Instr.D -> xset64 st r lane v | Instr.S -> xset32 st r lane (round32 v)

let xzero st r =
  let i = slot r in
  ensure_xmm st i;
  Bytes.fill st.xmm (i * 16) 16 '\000'

let xcopy st d s =
  let di = slot d and si = slot s in
  ensure_xmm st (max di si);
  Bytes.blit st.xmm (si * 16) st.xmm (di * 16) 16

(* ---------- memory access ---------- *)

let addr_of st (m : Instr.mem) =
  let base = gget st m.Instr.base in
  let idx = match m.Instr.index with Some r -> gget st r * m.Instr.scale | None -> 0 in
  base + idx + m.Instr.disp

let check_bounds st addr bytes =
  if addr < 0 || addr + bytes > Bytes.length st.memm then
    trap "memory access out of range: addr=%d size=%d" addr bytes

let load_f st sz addr =
  match sz with
  | Instr.D ->
    check_bounds st addr 8;
    Int64.float_of_bits (Bytes.get_int64_le st.memm addr)
  | Instr.S ->
    check_bounds st addr 4;
    Int32.float_of_bits (Bytes.get_int32_le st.memm addr)

let store_f st sz addr v =
  match sz with
  | Instr.D ->
    check_bounds st addr 8;
    Bytes.set_int64_le st.memm addr (Int64.bits_of_float v)
  | Instr.S ->
    check_bounds st addr 4;
    Bytes.set_int32_le st.memm addr (Int32.bits_of_float (round32 v))

let vload st r addr =
  check_bounds st addr 16;
  if addr mod 16 <> 0 then trap "unaligned vector load at %d" addr;
  let i = slot r in
  ensure_xmm st i;
  Bytes.blit st.memm addr st.xmm (i * 16) 16

let vstore st addr r =
  check_bounds st addr 16;
  if addr mod 16 <> 0 then trap "unaligned vector store at %d" addr;
  let i = slot r in
  ensure_xmm st i;
  Bytes.blit st.xmm (i * 16) st.memm addr 16

(* ---------- arithmetic ---------- *)

let fop_eval op a b =
  match op with
  | Instr.Fadd -> a +. b
  | Instr.Fsub -> a -. b
  | Instr.Fmul -> a *. b
  | Instr.Fdiv -> a /. b
  | Instr.Fmax -> Float.max a b
  | Instr.Fmin -> Float.min a b

let iop_eval op a b =
  match op with
  | Instr.Iadd -> a + b
  | Instr.Isub -> a - b
  | Instr.Imul -> a * b
  | Instr.Iand -> a land b
  | Instr.Ior -> a lor b
  | Instr.Ishl -> a lsl b
  | Instr.Ishr -> a asr b

let cmp_eval_i op a b =
  match op with
  | Instr.Lt -> a < b
  | Instr.Le -> a <= b
  | Instr.Gt -> a > b
  | Instr.Ge -> a >= b
  | Instr.Eq -> a = b
  | Instr.Ne -> a <> b

let cmp_eval_f op a b =
  match op with
  | Instr.Lt -> a < b
  | Instr.Le -> a <= b
  | Instr.Gt -> a > b
  | Instr.Ge -> a >= b
  | Instr.Eq -> a = b
  | Instr.Ne -> a <> b

(* ---------- timing model ---------- *)

(* functional units *)
let u_alu = 0
and u_load = 1
and u_store = 2
and u_fpadd = 3
and u_fpmul = 4
and u_fpdiv = 5
and u_branch = 6

let n_units = 7

type timing = {
  cfg : Config.t;
  ms : Memsys.t;
  mutable front : float;
  mutable gready : float array;
  mutable gr_cap : int;
  mutable xready : float array;
  mutable xr_cap : int;
  unit_free : float array;
  service : float array;
  predictor : (string, bool) Hashtbl.t;
  rob : float array;  (** completion times, circular; bounds issue depth *)
  mutable rob_idx : int;
  mutable last : float;
  mutable uops : int;
}

let make_timing cfg ms =
  let service = Array.make n_units 1.0 in
  service.(u_alu) <- 0.5;
  service.(u_fpdiv) <- float_of_int cfg.Config.fdiv_lat;
  {
    cfg;
    ms;
    front = 0.0;
    gready = Array.make 32 0.0;
    gr_cap = 32;
    xready = Array.make 32 0.0;
    xr_cap = 32;
    unit_free = Array.make n_units 0.0;
    service;
    predictor = Hashtbl.create 16;
    rob = Array.make (max 8 cfg.Config.rob_size) 0.0;
    rob_idx = 0;
    last = 0.0;
    uops = 0;
  }

let ensure_ready tm cls n =
  match cls with
  | Reg.Gpr ->
    if n >= tm.gr_cap then begin
      let cap = max (n + 1) (2 * tm.gr_cap) in
      let a = Array.make cap 0.0 in
      Array.blit tm.gready 0 a 0 tm.gr_cap;
      tm.gready <- a;
      tm.gr_cap <- cap
    end
  | Reg.Xmm ->
    if n >= tm.xr_cap then begin
      let cap = max (n + 1) (2 * tm.xr_cap) in
      let a = Array.make cap 0.0 in
      Array.blit tm.xready 0 a 0 tm.xr_cap;
      tm.xready <- a;
      tm.xr_cap <- cap
    end

let ready tm (r : Reg.t) =
  let i = slot r in
  ensure_ready tm r.Reg.cls i;
  match r.Reg.cls with Reg.Gpr -> tm.gready.(i) | Reg.Xmm -> tm.xready.(i)

(* Record the completion time of the instruction just dispatched (one
   ROB slot per instruction — a close-enough approximation). *)
let retire tm completion =
  tm.rob.(tm.rob_idx) <- completion;
  tm.rob_idx <- (tm.rob_idx + 1) mod Array.length tm.rob;
  if completion > tm.last then tm.last <- completion

let set_ready tm (r : Reg.t) v =
  let i = slot r in
  ensure_ready tm r.Reg.cls i;
  (match r.Reg.cls with Reg.Gpr -> tm.gready.(i) <- v | Reg.Xmm -> tm.xready.(i) <- v);
  retire tm v

let srcs_ready tm regs = List.fold_left (fun acc r -> Float.max acc (ready tm r)) 0.0 regs

(* Dispatch [uops] micro-ops on [unit]; returns the execution start.
   Issue cannot proceed past a full reorder buffer: the slot about to
   be reused holds the completion time of the µop issued rob_size ago. *)
let acquire tm unit ~srcs ~uops =
  tm.uops <- tm.uops + uops;
  tm.front <- Float.max tm.front (tm.rob.(tm.rob_idx));
  let start = Float.max (Float.max tm.front srcs) tm.unit_free.(unit) in
  tm.unit_free.(unit) <- start +. (tm.service.(unit) *. float_of_int uops);
  tm.front <- tm.front +. (float_of_int uops /. float_of_int tm.cfg.Config.issue_width);
  start


let fp_unit op = match op with Instr.Fmul -> u_fpmul | Instr.Fdiv -> u_fpdiv | _ -> u_fpadd

let fp_lat tm op =
  match op with
  | Instr.Fmul -> float_of_int tm.cfg.Config.fmul_lat
  | Instr.Fdiv -> float_of_int tm.cfg.Config.fdiv_lat
  | _ -> float_of_int tm.cfg.Config.fadd_lat

let mem_regs (m : Instr.mem) = Instr.mem_uses m

(* ---------- the walker ---------- *)

let run ?timing ?(max_instrs = 200_000_000) ?(ret_fsize = Instr.D) (f : Cfg.func) (env : Env.t) =
  let st =
    {
      gpr = Array.make 32 0;
      gcap = 32;
      xmm = Bytes.make (32 * 16) '\000';
      xcap = 32;
      memm = Env.mem env;
    }
  in
  let tm = Option.map (fun (cfg, ms) -> make_timing cfg ms) timing in
  (* Bind parameters and the frame pointer. *)
  gset st Reg.frame_ptr (Env.stack_base env);
  gset st Reg.stack_ptr (Env.stack_base env);
  List.iter
    (fun (name, r) ->
      match Env.binding env name with
      | Env.Int_arg v -> gset st r v
      | Env.Array_arg { addr; _ } -> gset st r addr
      | Env.Fp_arg (sz, v) ->
        xzero st r;
        set_xlane st sz r 0 v
      | exception Not_found -> trap "no binding for parameter %S" name)
    f.Cfg.params;
  let blocks : (string, Instr.t array * Block.term) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun b ->
      Hashtbl.replace blocks b.Block.label (Array.of_list b.Block.instrs, b.Block.term))
    f.Cfg.blocks;
  let instr_count = ref 0 in
  let lanes = Instr.lanes in
  (* Execute one instruction: semantics always, timing when enabled. *)
  let step i =
    incr instr_count;
    if !instr_count > max_instrs then trap "instruction budget exceeded";
    match i with
    | Instr.Ild (d, m) ->
      let addr = addr_of st m in
      check_bounds st addr 8;
      gset st d (Int64.to_int (Bytes.get_int64_le st.memm addr));
      Option.iter
        (fun tm ->
          let start = acquire tm u_load ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          set_ready tm d (Memsys.load tm.ms ~addr ~now:start))
        tm
    | Instr.Ist (m, s) ->
      let addr = addr_of st m in
      check_bounds st addr 8;
      Bytes.set_int64_le st.memm addr (Int64.of_int (gget st s));
      Option.iter
        (fun tm ->
          let start = acquire tm u_store ~srcs:(srcs_ready tm (s :: mem_regs m)) ~uops:1 in
          Memsys.store tm.ms ~addr ~now:start;
          retire tm (start +. 1.0))
        tm
    | Instr.Imov (d, s) ->
      gset st d (gget st s);
      Option.iter
        (fun tm ->
          let start = acquire tm u_alu ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Ildi (d, v) ->
      gset st d v;
      Option.iter
        (fun tm ->
          let start = acquire tm u_alu ~srcs:0.0 ~uops:1 in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Iop (op, d, a, b) ->
      let bv = match b with Instr.Oreg r -> gget st r | Instr.Oimm k -> k in
      gset st d (iop_eval op (gget st a) bv);
      Option.iter
        (fun tm ->
          let srcs =
            Float.max (ready tm a)
              (match b with Instr.Oreg r -> ready tm r | Instr.Oimm _ -> 0.0)
          in
          let lat = match op with Instr.Imul -> 3.0 | _ -> 1.0 in
          let start = acquire tm u_alu ~srcs ~uops:1 in
          set_ready tm d (start +. lat))
        tm
    | Instr.Lea (d, m) ->
      gset st d (addr_of st m);
      Option.iter
        (fun tm ->
          let start = acquire tm u_alu ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Fld (sz, d, m) ->
      let addr = addr_of st m in
      xzero st d;
      set_xlane st sz d 0 (load_f st sz addr);
      Option.iter
        (fun tm ->
          let start = acquire tm u_load ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          set_ready tm d (Memsys.load tm.ms ~addr ~now:start))
        tm
    | Instr.Fst (sz, m, s) ->
      let addr = addr_of st m in
      store_f st sz addr (xlane st sz s 0);
      Option.iter
        (fun tm ->
          let start = acquire tm u_store ~srcs:(srcs_ready tm (s :: mem_regs m)) ~uops:1 in
          Memsys.store tm.ms ~addr ~now:start;
          retire tm (start +. 1.0))
        tm
    | Instr.Fstnt (sz, m, s) ->
      let addr = addr_of st m in
      store_f st sz addr (xlane st sz s 0);
      Option.iter
        (fun tm ->
          let start = acquire tm u_store ~srcs:(srcs_ready tm (s :: mem_regs m)) ~uops:1 in
          Memsys.nt_store tm.ms ~addr ~bytes:(Instr.fsize_bytes sz) ~now:start;
          retire tm (start +. 1.0))
        tm
    | Instr.Fmov (_, d, s) ->
      xcopy st d s;
      Option.iter
        (fun tm ->
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Fldi (sz, d, c) ->
      xzero st d;
      set_xlane st sz d 0 c;
      Option.iter
        (fun tm ->
          let start = acquire tm u_load ~srcs:0.0 ~uops:1 in
          set_ready tm d (start +. float_of_int tm.cfg.Config.l1.Config.latency))
        tm
    | Instr.Fop (sz, op, d, a, b) ->
      set_xlane st sz d 0 (fop_eval op (xlane st sz a 0) (xlane st sz b 0));
      Option.iter
        (fun tm ->
          let start =
            acquire tm (fp_unit op) ~srcs:(Float.max (ready tm a) (ready tm b)) ~uops:1
          in
          set_ready tm d (start +. fp_lat tm op))
        tm
    | Instr.Fopm (sz, op, d, a, m) ->
      let addr = addr_of st m in
      set_xlane st sz d 0 (fop_eval op (xlane st sz a 0) (load_f st sz addr));
      Option.iter
        (fun tm ->
          let lstart = acquire tm u_load ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          let data = Memsys.load tm.ms ~addr ~now:lstart in
          let start =
            acquire tm (fp_unit op) ~srcs:(Float.max data (ready tm a)) ~uops:1
          in
          set_ready tm d (start +. fp_lat tm op))
        tm
    | Instr.Fabs (sz, d, s) ->
      set_xlane st sz d 0 (Float.abs (xlane st sz s 0));
      Option.iter
        (fun tm ->
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Fsqrt (sz, d, s) ->
      set_xlane st sz d 0 (Float.sqrt (xlane st sz s 0));
      Option.iter
        (fun tm ->
          (* square root shares the unpipelined divider *)
          let start = acquire tm u_fpdiv ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. float_of_int tm.cfg.Config.fdiv_lat))
        tm
    | Instr.Fneg (sz, d, s) ->
      set_xlane st sz d 0 (-.xlane st sz s 0);
      Option.iter
        (fun tm ->
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Vld (_, d, m) ->
      let addr = addr_of st m in
      vload st d addr;
      Option.iter
        (fun tm ->
          let start = acquire tm u_load ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          set_ready tm d (Memsys.load tm.ms ~addr ~now:start))
        tm
    | Instr.Vst (_, m, s) ->
      let addr = addr_of st m in
      vstore st addr s;
      Option.iter
        (fun tm ->
          let start = acquire tm u_store ~srcs:(srcs_ready tm (s :: mem_regs m)) ~uops:1 in
          Memsys.store tm.ms ~addr ~now:start;
          retire tm (start +. 1.0))
        tm
    | Instr.Vstnt (_, m, s) ->
      let addr = addr_of st m in
      vstore st addr s;
      Option.iter
        (fun tm ->
          let start = acquire tm u_store ~srcs:(srcs_ready tm (s :: mem_regs m)) ~uops:1 in
          Memsys.nt_store tm.ms ~addr ~bytes:16 ~now:start;
          retire tm (start +. 1.0))
        tm
    | Instr.Vmov (_, d, s) ->
      xcopy st d s;
      Option.iter
        (fun tm ->
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Vbcast (sz, d, s) ->
      let v = xlane st sz s 0 in
      for lane = 0 to lanes sz - 1 do
        set_xlane st sz d lane v
      done;
      Option.iter
        (fun tm ->
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 2.0))
        tm
    | Instr.Vldi (sz, d, c) ->
      for lane = 0 to lanes sz - 1 do
        set_xlane st sz d lane c
      done;
      Option.iter
        (fun tm ->
          let start = acquire tm u_load ~srcs:0.0 ~uops:1 in
          set_ready tm d (start +. float_of_int tm.cfg.Config.l1.Config.latency))
        tm
    | Instr.Vop (sz, op, d, a, b) ->
      for lane = 0 to lanes sz - 1 do
        set_xlane st sz d lane (fop_eval op (xlane st sz a lane) (xlane st sz b lane))
      done;
      Option.iter
        (fun tm ->
          let uops = tm.cfg.Config.vec_uops in
          let start =
            acquire tm (fp_unit op) ~srcs:(Float.max (ready tm a) (ready tm b)) ~uops
          in
          set_ready tm d (start +. fp_lat tm op))
        tm
    | Instr.Vopm (sz, op, d, a, m) ->
      let addr = addr_of st m in
      if addr mod 16 <> 0 then trap "unaligned vector operand at %d" addr;
      check_bounds st addr 16;
      for lane = 0 to lanes sz - 1 do
        let mv = load_f st sz (addr + (lane * Instr.fsize_bytes sz)) in
        set_xlane st sz d lane (fop_eval op (xlane st sz a lane) mv)
      done;
      Option.iter
        (fun tm ->
          let lstart = acquire tm u_load ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          let data = Memsys.load tm.ms ~addr ~now:lstart in
          let uops = tm.cfg.Config.vec_uops in
          let start = acquire tm (fp_unit op) ~srcs:(Float.max data (ready tm a)) ~uops in
          set_ready tm d (start +. fp_lat tm op))
        tm
    | Instr.Vabs (sz, d, s) ->
      for lane = 0 to lanes sz - 1 do
        set_xlane st sz d lane (Float.abs (xlane st sz s lane))
      done;
      Option.iter
        (fun tm ->
          let uops = tm.cfg.Config.vec_uops in
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Vsqrt (sz, d, s) ->
      for lane = 0 to lanes sz - 1 do
        set_xlane st sz d lane (Float.sqrt (xlane st sz s lane))
      done;
      Option.iter
        (fun tm ->
          let uops = tm.cfg.Config.vec_uops in
          let start = acquire tm u_fpdiv ~srcs:(ready tm s) ~uops in
          set_ready tm d (start +. float_of_int tm.cfg.Config.fdiv_lat))
        tm
    | Instr.Vcmp (sz, cmp, d, a, b) ->
      for lane = 0 to lanes sz - 1 do
        let t = cmp_eval_f cmp (xlane st sz a lane) (xlane st sz b lane) in
        let i = slot d in
        ensure_xmm st i;
        (match sz with
        | Instr.D ->
          Bytes.set_int64_le st.xmm ((i * 16) + (lane * 8))
            (if t then Int64.minus_one else 0L)
        | Instr.S ->
          Bytes.set_int32_le st.xmm ((i * 16) + (lane * 4))
            (if t then Int32.minus_one else 0l))
      done;
      Option.iter
        (fun tm ->
          let uops = tm.cfg.Config.vec_uops in
          let start = acquire tm u_fpadd ~srcs:(Float.max (ready tm a) (ready tm b)) ~uops in
          set_ready tm d (start +. 3.0))
        tm
    | Instr.Vmovmsk (sz, d, s) ->
      let mask = ref 0 in
      let i = slot s in
      ensure_xmm st i;
      for lane = 0 to lanes sz - 1 do
        let top =
          match sz with
          | Instr.D ->
            Int64.to_int
              (Int64.shift_right_logical (Bytes.get_int64_le st.xmm ((i * 16) + (lane * 8))) 63)
          | Instr.S ->
            Int32.to_int
              (Int32.shift_right_logical (Bytes.get_int32_le st.xmm ((i * 16) + (lane * 4))) 31)
        in
        if top land 1 = 1 then mask := !mask lor (1 lsl lane)
      done;
      gset st d !mask;
      Option.iter
        (fun tm ->
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 2.0))
        tm
    | Instr.Vextract (sz, d, s, lane) ->
      let v = xlane st sz s lane in
      xzero st d;
      set_xlane st sz d 0 v;
      Option.iter
        (fun tm ->
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 2.0))
        tm
    | Instr.Vreduce (sz, op, d, s) ->
      let acc = ref (xlane st sz s 0) in
      for lane = 1 to lanes sz - 1 do
        acc := fop_eval op !acc (xlane st sz s lane);
        if sz = Instr.S then acc := round32 !acc
      done;
      let v = !acc in
      xzero st d;
      set_xlane st sz d 0 v;
      Option.iter
        (fun tm ->
          let start = acquire tm (fp_unit op) ~srcs:(ready tm s) ~uops:2 in
          set_ready tm d (start +. (2.0 *. fp_lat tm op)))
        tm
    | Instr.Touch (sz, m) ->
      let addr = addr_of st m in
      check_bounds st addr (Instr.fsize_bytes sz);
      Option.iter
        (fun tm ->
          let start = acquire tm u_load ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          let done_ = Memsys.load tm.ms ~addr ~now:start in
          retire tm done_)
        tm
    | Instr.Prefetch (kind, m) ->
      let addr = addr_of st m in
      Option.iter
        (fun tm ->
          let start = acquire tm u_load ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          if addr >= 0 && addr < Bytes.length st.memm then
            Memsys.prefetch tm.ms ~kind ~addr ~now:start;
          retire tm (start +. 1.0))
        tm
    | Instr.Nop -> ()
  in
  (* Terminator execution; returns the next label or the return value. *)
  let terminate label term =
    match term with
    | Block.Jmp l ->
      Option.iter
        (fun tm ->
          let start = acquire tm u_branch ~srcs:0.0 ~uops:1 in
          retire tm (start +. 1.0))
        tm;
      `Goto l
    | Block.Br { cmp; lhs; rhs; ifso; ifnot; dec } ->
      if dec > 0 then gset st lhs (gget st lhs - dec);
      let rv = match rhs with Instr.Oreg r -> gget st r | Instr.Oimm k -> k in
      let taken = cmp_eval_i cmp (gget st lhs) rv in
      Option.iter
        (fun tm ->
          let srcs =
            Float.max (ready tm lhs)
              (match rhs with Instr.Oreg r -> ready tm r | Instr.Oimm _ -> 0.0)
          in
          let start = acquire tm u_branch ~srcs ~uops:1 in
          let resolve = start +. 1.0 in
          if dec > 0 then set_ready tm lhs resolve else retire tm resolve;
          let predicted =
            match Hashtbl.find_opt tm.predictor label with Some p -> p | None -> true
          in
          if predicted <> taken then
            tm.front <- Float.max tm.front (resolve +. float_of_int tm.cfg.Config.branch_misp_penalty);
          Hashtbl.replace tm.predictor label taken)
        tm;
      `Goto (if taken then ifso else ifnot)
    | Block.Fbr { fsize; cmp; lhs; rhs; ifso; ifnot } ->
      let taken = cmp_eval_f cmp (xlane st fsize lhs 0) (xlane st fsize rhs 0) in
      Option.iter
        (fun tm ->
          let srcs = Float.max (ready tm lhs) (ready tm rhs) in
          let start = acquire tm u_branch ~srcs ~uops:2 in
          let resolve = start +. 3.0 in
          retire tm resolve;
          let predicted =
            match Hashtbl.find_opt tm.predictor label with Some p -> p | None -> false
          in
          if predicted <> taken then
            tm.front <- Float.max tm.front (resolve +. float_of_int tm.cfg.Config.branch_misp_penalty);
          Hashtbl.replace tm.predictor label taken)
        tm;
      `Goto (if taken then ifso else ifnot)
    | Block.Ret r -> `Return r
  in
  let rec go label =
    match Hashtbl.find_opt blocks label with
    | None -> trap "jump to unknown block %S" label
    | Some (instrs, term) ->
      Array.iter step instrs;
      (match terminate label term with
      | `Goto l -> go l
      | `Return r -> r)
  in
  let ret_reg = go (Cfg.entry f).Block.label in
  let ret =
    Option.map
      (fun (r : Reg.t) ->
        match r.Reg.cls with
        | Reg.Gpr -> Rint (gget st r)
        | Reg.Xmm -> Rfp (xlane st ret_fsize r 0))
      ret_reg
  in
  let cycles =
    match tm with
    | None -> 0.0
    | Some tm ->
      let finish =
        Float.max tm.front
          (match ret_reg with Some r -> ready tm r | None -> tm.last)
      in
      Memsys.drain_time tm.ms ~now:(Float.max finish tm.last)
  in
  {
    ret;
    cycles;
    instr_count = !instr_count;
    uop_count = (match tm with Some tm -> tm.uops | None -> !instr_count);
  }
