type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | KERNEL
  | RETURNS
  | VARS
  | BEGIN
  | END
  | LOOP
  | OPTLOOP
  | LOOP_BODY
  | LOOP_END
  | IF
  | THEN
  | ELSE
  | ENDIF
  | GOTO
  | RETURN
  | ABS
  | SQRT
  | TINT
  | TSINGLE
  | TDOUBLE
  | TPTR
  | OUTPUT
  | NOPREFETCH
  | MAYALIAS
  | SPECULATE
  | LPAREN
  | RPAREN
  | LBRACK
  | RBRACK
  | COMMA
  | SEMI
  | COLON
  | EQ
  | PLUSEQ
  | MINUSEQ
  | STAREQ
  | SLASHEQ
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | CMP of Ast.cmpop
  | EOF

exception Error of string * int

let keyword_table =
  [
    ("KERNEL", KERNEL);
    ("RETURNS", RETURNS);
    ("VARS", VARS);
    ("BEGIN", BEGIN);
    ("END", END);
    ("LOOP", LOOP);
    ("OPTLOOP", OPTLOOP);
    ("LOOP_BODY", LOOP_BODY);
    ("LOOP_END", LOOP_END);
    ("IF", IF);
    ("THEN", THEN);
    ("ELSE", ELSE);
    ("ENDIF", ENDIF);
    ("GOTO", GOTO);
    ("RETURN", RETURN);
    ("ABS", ABS);
    ("SQRT", SQRT);
    ("int", TINT);
    ("single", TSINGLE);
    ("double", TDOUBLE);
    ("ptr", TPTR);
    ("OUTPUT", OUTPUT);
    ("NOPREFETCH", NOPREFETCH);
    ("MAYALIAS", MAYALIAS);
    ("SPECULATE", SPECULATE);
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let tokens = ref [] in
  let emit tok = tokens := (tok, !line) :: !tokens in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let rec skip_line () =
    if !pos < n && src.[!pos] <> '\n' then (
      incr pos;
      skip_line ())
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then (
      incr line;
      incr pos)
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if c = '#' then skip_line ()
    else if c = '/' && peek 1 = Some '/' then skip_line ()
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      match List.assoc_opt word keyword_table with
      | Some kw -> emit kw
      | None -> emit (IDENT word)
    end
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      let is_float = ref false in
      if !pos < n && src.[!pos] = '.' then begin
        is_float := true;
        incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done
      end;
      if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
        is_float := true;
        incr pos;
        if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
        while !pos < n && is_digit src.[!pos] do
          incr pos
        done
      end;
      let text = String.sub src start (!pos - start) in
      if !is_float then emit (FLOAT (float_of_string text))
      else emit (INT (int_of_string text))
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      let advance2 tok =
        emit tok;
        pos := !pos + 2
      in
      let advance1 tok =
        emit tok;
        incr pos
      in
      match two with
      | "+=" -> advance2 PLUSEQ
      | "-=" -> advance2 MINUSEQ
      | "*=" -> advance2 STAREQ
      | "/=" -> advance2 SLASHEQ
      | "<=" -> advance2 (CMP Ast.Le)
      | ">=" -> advance2 (CMP Ast.Ge)
      | "==" -> advance2 (CMP Ast.Eq)
      | "!=" -> advance2 (CMP Ast.Ne)
      | _ -> (
        match c with
        | '(' -> advance1 LPAREN
        | ')' -> advance1 RPAREN
        | '[' -> advance1 LBRACK
        | ']' -> advance1 RBRACK
        | ',' -> advance1 COMMA
        | ';' -> advance1 SEMI
        | ':' -> advance1 COLON
        | '=' -> advance1 EQ
        | '+' -> advance1 PLUS
        | '-' -> advance1 MINUS
        | '*' -> advance1 STAR
        | '/' -> advance1 SLASH
        | '<' -> advance1 (CMP Ast.Lt)
        | '>' -> advance1 (CMP Ast.Gt)
        | c -> raise (Error (Printf.sprintf "unexpected character %C" c, !line)))
    end
  done;
  emit EOF;
  List.rev !tokens

let describe = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT i -> Printf.sprintf "integer %d" i
  | FLOAT f -> Printf.sprintf "float %g" f
  | KERNEL -> "KERNEL"
  | RETURNS -> "RETURNS"
  | VARS -> "VARS"
  | BEGIN -> "BEGIN"
  | END -> "END"
  | LOOP -> "LOOP"
  | OPTLOOP -> "OPTLOOP"
  | LOOP_BODY -> "LOOP_BODY"
  | LOOP_END -> "LOOP_END"
  | IF -> "IF"
  | THEN -> "THEN"
  | ELSE -> "ELSE"
  | ENDIF -> "ENDIF"
  | GOTO -> "GOTO"
  | RETURN -> "RETURN"
  | ABS -> "ABS"
  | SQRT -> "SQRT"
  | TINT -> "int"
  | TSINGLE -> "single"
  | TDOUBLE -> "double"
  | TPTR -> "ptr"
  | OUTPUT -> "OUTPUT"
  | NOPREFETCH -> "NOPREFETCH"
  | MAYALIAS -> "MAYALIAS"
  | SPECULATE -> "SPECULATE"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACK -> "["
  | RBRACK -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | EQ -> "="
  | PLUSEQ -> "+="
  | MINUSEQ -> "-="
  | STAREQ -> "*="
  | SLASHEQ -> "/="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | CMP op -> Ast.string_of_cmpop op
  | EOF -> "end of input"
