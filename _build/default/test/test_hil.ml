(* Front-end tests: lexer, parser, pretty-printer round-trip, and the
   semantic checks of Typecheck. *)
open Ifko_hil

let token = Alcotest.testable (fun fmt t -> Format.pp_print_string fmt (Lexer.describe t)) ( = )

let test_lexer_basics () =
  let toks = List.map fst (Lexer.tokenize "x = X[0]; # comment\n dot += x * 1.5e2;") in
  Alcotest.(check (list token)) "tokens"
    [ Lexer.IDENT "x"; Lexer.EQ; Lexer.IDENT "X"; Lexer.LBRACK; Lexer.INT 0; Lexer.RBRACK;
      Lexer.SEMI; Lexer.IDENT "dot"; Lexer.PLUSEQ; Lexer.IDENT "x"; Lexer.STAR;
      Lexer.FLOAT 150.0; Lexer.SEMI; Lexer.EOF ]
    toks

let test_lexer_keywords () =
  let toks = List.map fst (Lexer.tokenize "KERNEL LOOP OPTLOOP int ptr double OUTPUT") in
  Alcotest.(check (list token)) "keywords"
    [ Lexer.KERNEL; Lexer.LOOP; Lexer.OPTLOOP; Lexer.TINT; Lexer.TPTR; Lexer.TDOUBLE;
      Lexer.OUTPUT; Lexer.EOF ]
    toks

let test_lexer_comparisons () =
  let toks = List.map fst (Lexer.tokenize "< <= > >= == != // trailing comment") in
  Alcotest.(check (list token)) "comparisons"
    [ Lexer.CMP Ast.Lt; Lexer.CMP Ast.Le; Lexer.CMP Ast.Gt; Lexer.CMP Ast.Ge;
      Lexer.CMP Ast.Eq; Lexer.CMP Ast.Ne; Lexer.EOF ]
    toks

let test_lexer_error () =
  match Lexer.tokenize "x = @;" with
  | exception Lexer.Error (_, 1) -> ()
  | _ -> Alcotest.fail "expected a lexer error on '@'"

let test_lexer_line_numbers () =
  let toks = Lexer.tokenize "a\nb\nc" in
  Alcotest.(check (list int)) "lines" [ 1; 2; 3; 3 ] (List.map snd toks)

let parse_ok src = Parser.parse_kernel src

let test_parse_all_blas () =
  List.iter
    (fun id ->
      let k = parse_ok (Ifko_blas.Hil_sources.source id) in
      Alcotest.(check string) "name" (Ifko_blas.Defs.name id) k.Ast.k_name)
    Ifko_blas.Defs.all

let test_roundtrip_all_blas () =
  (* parse -> pretty-print -> parse must be the identity on the AST *)
  List.iter
    (fun id ->
      let k = parse_ok (Ifko_blas.Hil_sources.source id) in
      let k2 = parse_ok (Pp.kernel_to_string k) in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" (Ifko_blas.Defs.name id))
        true (k = k2))
    Ifko_blas.Defs.all

let test_parse_structure () =
  let k =
    parse_ok
      {|KERNEL t(N : int, X : ptr single NOPREFETCH MAYALIAS)
VARS a, b : single = 1.5;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    a = X[2];
    X += 1;
  LOOP_END
END|}
  in
  (match k.Ast.k_params with
  | [ p1; p2 ] ->
    Alcotest.(check string) "p1" "N" p1.Ast.p_name;
    Alcotest.(check bool) "flags" true
      (List.mem Ast.No_prefetch p2.Ast.p_flags && List.mem Ast.May_alias p2.Ast.p_flags)
  | _ -> Alcotest.fail "2 params expected");
  (match k.Ast.k_locals with
  | [ d ] ->
    Alcotest.(check (list string)) "names" [ "a"; "b" ] d.Ast.d_names;
    Alcotest.(check (option (float 0.0))) "init" (Some 1.5) d.Ast.d_init
  | _ -> Alcotest.fail "1 decl expected");
  match k.Ast.k_body with
  | [ Ast.Loop lp ] ->
    Alcotest.(check bool) "opt" true lp.Ast.loop_opt;
    Alcotest.(check int) "step" 1 lp.Ast.loop_step;
    Alcotest.(check int) "body stmts" 2 (List.length lp.Ast.loop_body)
  | _ -> Alcotest.fail "single loop expected"

let test_parse_precedence () =
  let k =
    parse_ok
      {|KERNEL t(N : int) RETURNS int
VARS a, b, c : int;
BEGIN
  a = a + b * c;
  b = (a + b) * c;
  RETURN a;
END|}
  in
  match k.Ast.k_body with
  | [ Ast.Assign (_, e1); Ast.Assign (_, e2); _ ] ->
    (match e1 with
    | Ast.Binop (Ast.Add, Ast.Var "a", Ast.Binop (Ast.Mul, _, _)) -> ()
    | _ -> Alcotest.fail "mul binds tighter than add");
    (match e2 with
    | Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, _, _), Ast.Var "c") -> ()
    | _ -> Alcotest.fail "parens respected")
  | _ -> Alcotest.fail "unexpected body"

let test_parse_error () =
  match Parser.parse_kernel "KERNEL t(N : int BEGIN END" with
  | exception Parser.Error (_, _) -> ()
  | _ -> Alcotest.fail "expected a parse error"

let expect_check_error src =
  match Typecheck.check (Parser.parse_kernel src) with
  | exception Typecheck.Error _ -> ()
  | _ -> Alcotest.fail ("expected a type error for:\n" ^ src)

let test_check_all_blas () =
  List.iter
    (fun id ->
      ignore
        (Typecheck.check (Parser.parse_kernel (Ifko_blas.Hil_sources.source id))
          : Typecheck.checked))
    Ifko_blas.Defs.all

let test_check_unbound () =
  expect_check_error {|KERNEL t(N : int)
BEGIN
  y = 1;
END|}

let test_check_duplicate () =
  expect_check_error {|KERNEL t(N : int, N : int)
BEGIN
END|}

let test_check_bad_goto () =
  expect_check_error {|KERNEL t(N : int)
BEGIN
  GOTO nowhere;
END|}

let test_check_pointer_assign () =
  expect_check_error
    {|KERNEL t(N : int, X : ptr double)
VARS x : double;
BEGIN
  X = x;
END|}

let test_check_pointer_inc_forms () =
  (* integer-variable strides are legal (the BLAS incX case)... *)
  (match
     Typecheck.check
       (Parser.parse_kernel {|KERNEL t(N : int, X : ptr double)
BEGIN
  X += N;
END|})
   with
  | { Typecheck.kernel = { Ast.k_body = [ Ast.Ptr_inc_var ("X", "N") ]; _ }; _ } -> ()
  | _ -> Alcotest.fail "int-variable stride should normalize to Ptr_inc_var"
  | exception Typecheck.Error e -> Alcotest.fail e);
  (* ...but arbitrary expressions and non-int strides are not *)
  expect_check_error
    {|KERNEL t(N : int, X : ptr double)
BEGIN
  X += N + 1;
END|};
  expect_check_error
    {|KERNEL t(N : int, a : double, X : ptr double)
BEGIN
  X += a;
END|}

let test_check_return_mismatch () =
  expect_check_error {|KERNEL t(N : int)
BEGIN
  RETURN N;
END|};
  expect_check_error {|KERNEL t(N : int) RETURNS int
BEGIN
  RETURN;
END|}

let test_check_nested_optloop () =
  expect_check_error
    {|KERNEL t(N : int, X : ptr double OUTPUT)
VARS x : double;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    LOOP j = 0, N
    LOOP_BODY
      x = X[0];
    LOOP_END
  LOOP_END
END|}

let test_check_mixed_precision () =
  expect_check_error
    {|KERNEL t(N : int, X : ptr double, Y : ptr single)
VARS x : double;
BEGIN
  x = X[0] + Y[0];
END|}

let test_scoped_if_parse () =
  let k =
    parse_ok
      {|KERNEL t(N : int) RETURNS int
VARS a, b : int;
BEGIN
  IF (a > b) THEN
    a = 1;
  ELSE
    IF (b > 3) THEN
      a = 2;
    ENDIF
  ENDIF
  RETURN a;
END|}
  in
  (match k.Ast.k_body with
  | [ Ast.If_then (Ast.Gt, _, _, [ _ ], [ Ast.If_then (_, _, _, [ _ ], []) ]); _ ] -> ()
  | _ -> Alcotest.fail "scoped if structure");
  (* roundtrips through the pretty-printer *)
  let k2 = parse_ok (Pp.kernel_to_string k) in
  Alcotest.(check bool) "roundtrip" true (k = k2)

let test_scoped_if_typecheck () =
  ignore
    (Typecheck.check
       (parse_ok (Ifko_blas.Hil_sources.straightforward_iamax
                    { Ifko_blas.Defs.routine = Ifko_blas.Defs.Iamax; prec = Ifko_hil.Ast.Single |> fun _ -> Instr.S }))
      : Typecheck.checked);
  expect_check_error
    {|KERNEL t(N : int)
BEGIN
  IF (y > 1) THEN
  ENDIF
END|}

let test_check_normalizes_ptr_inc () =
  let checked =
    Typecheck.check
      (Parser.parse_kernel
         {|KERNEL t(N : int, X : ptr double)
BEGIN
  X += 2;
  X -= 1;
END|})
  in
  match checked.Typecheck.kernel.Ast.k_body with
  | [ Ast.Ptr_inc ("X", 2); Ast.Ptr_inc ("X", -1) ] -> ()
  | _ -> Alcotest.fail "pointer updates should normalize to Ptr_inc"

let test_check_loop_var_auto_int () =
  let checked =
    Typecheck.check
      (Parser.parse_kernel
         {|KERNEL t(N : int)
BEGIN
  LOOP i = 0, N
  LOOP_BODY
  LOOP_END
END|})
  in
  Alcotest.(check bool) "i : int" true
    (Typecheck.lookup checked.Typecheck.env "i" = Ast.Int)

let suite =
  [ Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer keywords" `Quick test_lexer_keywords;
    Alcotest.test_case "lexer comparisons" `Quick test_lexer_comparisons;
    Alcotest.test_case "lexer error" `Quick test_lexer_error;
    Alcotest.test_case "lexer line numbers" `Quick test_lexer_line_numbers;
    Alcotest.test_case "parse all BLAS" `Quick test_parse_all_blas;
    Alcotest.test_case "pp/parse roundtrip" `Quick test_roundtrip_all_blas;
    Alcotest.test_case "parse structure" `Quick test_parse_structure;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse error" `Quick test_parse_error;
    Alcotest.test_case "check all BLAS" `Quick test_check_all_blas;
    Alcotest.test_case "check unbound" `Quick test_check_unbound;
    Alcotest.test_case "check duplicate" `Quick test_check_duplicate;
    Alcotest.test_case "check bad goto" `Quick test_check_bad_goto;
    Alcotest.test_case "check pointer assign" `Quick test_check_pointer_assign;
    Alcotest.test_case "check pointer inc forms" `Quick test_check_pointer_inc_forms;
    Alcotest.test_case "check return mismatch" `Quick test_check_return_mismatch;
    Alcotest.test_case "check nested optloop" `Quick test_check_nested_optloop;
    Alcotest.test_case "check mixed precision" `Quick test_check_mixed_precision;
    Alcotest.test_case "scoped if parse" `Quick test_scoped_if_parse;
    Alcotest.test_case "scoped if typecheck" `Quick test_scoped_if_typecheck;
    Alcotest.test_case "check ptr_inc normalization" `Quick test_check_normalizes_ptr_inc;
    Alcotest.test_case "loop var auto int" `Quick test_check_loop_var_auto_int;
  ]
