lib/transform/simd.ml: Block Cfg Edit Hashtbl Ifko_analysis Ifko_codegen Instr List Loopnest Lower Maxloc Reg Vecinfo
