examples/custom_kernel.ml: Array Ifko Ifko_util Instr List Printf
