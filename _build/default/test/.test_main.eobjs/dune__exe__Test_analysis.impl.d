test/test_analysis.ml: Accuminfo Alcotest Block Cfg Defs Hil_sources Ifko_analysis Ifko_blas Ifko_codegen Ifko_hil Instr List Liveness Printf Ptrinfo Reg Report Test_util Vecinfo
