(** Renderers that turn {!Eval.study} data into the paper's tables and
    figures (as fixed-width text). *)

val table1 : unit -> string
(** Table 1: the surveyed Level 1 BLAS and their FLOP accounting. *)

val table2 : unit -> string
(** Table 2's analogue: the simulated platforms and the modelled
    compiler policies (with the key machine parameters). *)

val relative_figure : title:string -> Eval.study -> string
(** Figures 2/3/4: every tuning method as a percentage of the best
    observed kernel, one row per kernel plus AVG and VAVG, with text
    bars. *)

val fig5a : Eval.study -> Eval.study -> string
(** Figure 5(a): ifko MFLOPS per routine, out of cache, both
    machines. *)

val fig5b : oc:Eval.study -> l2:Eval.study -> string
(** Figure 5(b): in-L2 speedup over out-of-cache on the P4E-like
    machine (a measure of how bus-bound each operation is). *)

val table3 : (string * Eval.study) list -> string
(** Table 3: the transformation parameters found by the empirical
    search, per platform/context. *)

val fig7 : (string * Eval.study) list -> string
(** Figure 7: percent of FKO performance gained by empirically tuning
    each parameter ([WNT, PF DST, PF INS, UR, AE]), per kernel and
    context, with the overall average. *)

val opteron_l2_note : Eval.study -> string
(** The paper's Section 3 remark for the omitted in-L2 Opteron data:
    the two best methods and icc's average fraction of ifko's speed. *)
