lib/transform/ciscidx.ml: Block Cfg Edit Ifko_analysis Ifko_codegen Instr List Loopnest Lower Ptrinfo Reg
