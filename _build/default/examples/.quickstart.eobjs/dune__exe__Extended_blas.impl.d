examples/extended_blas.ml: Extras Ifko Ifko_blas Instr List Printf
