(** Hand-tuning idioms available to ATLAS's kernels.  The two-array
    indexing rewrite lives in {!Ifko_transform.Ciscidx}; this alias
    keeps the baseline code reading like the paper's narrative (a trick
    the hand-tuners had and FKO, as published, did not). *)

let two_array_indexing = Ifko_transform.Ciscidx.apply
