(** ATLAS's install-time empirical search.

    For each routine ATLAS times every hand-tuned implementation (over
    a small grid of prefetch settings and write-hint choices) in the
    target context and keeps the fastest — "the best kernel found by
    ATLAS's empirical search".  When the winner is an all-assembly
    kernel its name carries the [*] suffix, exactly as in the paper's
    figures. *)

open Ifko_blas
open Ifko_machine

type selection = {
  kernel_name : string;  (** e.g. ["dcopy*"] when assembly won *)
  candidate : string;
  func : Cfg.func;
  mflops : float;
}

(* The hand-tuned kernels embed their prefetch structure; ATLAS's
   install-time search only tries each implementation with its inline
   prefetch enabled or disabled (the fine-grained distance search is
   exactly what ifko adds over ATLAS). *)
let pf_grid (cfg : Config.t) =
  let line = cfg.Config.prefetchable_line in
  [ None; Some (Instr.Nta, 8 * line) ]

let select ?store ~cfg ~context ~n ~seed (id : Defs.kernel_id) =
  let spec = Workload.timer_spec id ~seed in
  let flops_per_n = Defs.flops_per_n id.Defs.routine in
  let context_name = Ifko_sim.Timer.context_name context in
  let best = ref None in
  List.iter
    (fun (cand : Atlas_kernels.candidate) ->
      List.iter
        (fun pf ->
          List.iter
            (fun wnt ->
              match cand.Atlas_kernels.build ~cfg ~pf ~wnt with
              | exception _ -> () (* a candidate that fails to build is skipped *)
              | func ->
                (* building is construction, timing is simulation: only
                   the timing is worth journaling, keyed by the built
                   code itself (so editing a hand-tuned kernel misses) *)
                let mflops =
                  match
                    Ifko_store.Store.cached ?store
                      ~key:
                        (Ifko_store.Store.timing_key ~kind:"atlas"
                           ~func:(Cfg.to_string func) ~machine:cfg.Config.name
                           ~context:context_name ~n ~seed)
                      ~params:
                        (Printf.sprintf "%s pf=%s wnt=%b" cand.Atlas_kernels.cand_name
                           (match pf with
                           | None -> "none"
                           | Some (_, d) -> string_of_int d)
                           wnt)
                      ~prov:
                        (Printf.sprintf "atlas:%s@%s/%s/n=%d" (Defs.name id)
                           cfg.Config.name context_name n)
                      (fun () ->
                        let cycles = Ifko_sim.Timer.measure ~cfg ~context ~spec ~n func in
                        Ifko_store.Store.Timed
                          { cycles;
                            mflops = Ifko_sim.Timer.mflops ~cfg ~flops_per_n ~n ~cycles
                          })
                  with
                  | Ifko_store.Store.Timed { mflops; _ } -> mflops
                  | Ifko_store.Store.Test_failed | Ifko_store.Store.Illegal ->
                    neg_infinity
                in
                let better =
                  match !best with None -> true | Some (m, _, _) -> mflops > m
                in
                if better then best := Some (mflops, cand, func))
            [ false; true ])
        (pf_grid cfg))
    (Atlas_kernels.candidates id);
  match !best with
  | None -> invalid_arg "Atlas_search.select: no candidate built"
  | Some (mflops, cand, func) ->
    {
      kernel_name =
        (Defs.name id ^ if cand.Atlas_kernels.assembly then "*" else "");
      candidate = cand.Atlas_kernels.cand_name;
      func;
      mflops;
    }
