(* Tuning a kernel that is NOT one of the shipped BLAS.

     dune exec examples/custom_kernel.exe

   The point of putting the search inside the compiler (rather than a
   library generator) is that "almost any floating point kernel" can be
   tuned.  Here we tune two kernels the library has never seen:

   - a Stream-style triad   z[i] = x[i] + alpha * y[i]
   - a squared-norm reduction  nrm += x[i] * x[i]

   The tester compares the transformed code against the *untransformed*
   lowering, so no hand-written reference is needed. *)

let triad_source =
  {|KERNEL striad(N : int, alpha : single, X : ptr single, Y : ptr single, Z : ptr single OUTPUT)
VARS
  x, y, z : single;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    y = Y[0];
    z = x + alpha * y;
    Z[0] = z;
    X += 1;
    Y += 1;
    Z += 1;
  LOOP_END
END
|}

let nrm2sq_source =
  {|KERNEL dnrm2sq(N : int, X : ptr double) RETURNS double
VARS
  nrm : double = 0.0;
  x : double;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    nrm += x * x;
    X += 1;
  LOOP_END
  RETURN nrm;
END
|}

(* Build a deterministic workload from the kernel's own signature. *)
let spec_for (compiled : Ifko.Lower.compiled) ~prec =
  let make_env n =
    let env = Ifko.Env.create ~mem_bytes:(4 * 1024 * 1024) () in
    let rng = Ifko_util.Rng.create (n + 99) in
    List.iter
      (fun (p : Ifko.Hil.Ast.param) ->
        match p.Ifko.Hil.Ast.p_ty with
        | Ifko.Hil.Ast.Int -> Ifko.Env.bind_int env p.Ifko.Hil.Ast.p_name n
        | Ifko.Hil.Ast.Fp _ -> Ifko.Env.bind_fp env p.Ifko.Hil.Ast.p_name prec 0.6
        | Ifko.Hil.Ast.Ptr _ ->
          Ifko.Env.alloc_array env p.Ifko.Hil.Ast.p_name prec n;
          Ifko.Env.fill env p.Ifko.Hil.Ast.p_name (fun _ -> Ifko_util.Rng.sign_float rng 1.0))
      compiled.Ifko.Lower.source.Ifko.Hil.Ast.k_params;
    env
  in
  { Ifko.Timer.make_env; ret_fsize = prec }

(* Differential tester: optimized code vs. the naive lowering. *)
let differential_test (compiled : Ifko.Lower.compiled) spec func =
  List.for_all
    (fun n ->
      let e1 = spec.Ifko.Timer.make_env n and e2 = spec.Ifko.Timer.make_env n in
      match
        ( Ifko.Exec.run ~ret_fsize:spec.Ifko.Timer.ret_fsize compiled.Ifko.Lower.func e1,
          Ifko.Exec.run ~ret_fsize:spec.Ifko.Timer.ret_fsize func e2 )
      with
      | exception Ifko.Exec.Trap _ -> false
      | r1, r2 ->
        (match (r1.Ifko.Exec.ret, r2.Ifko.Exec.ret) with
        | Some (Ifko.Exec.Rfp a), Some (Ifko.Exec.Rfp b) -> Ifko.Verify.close ~tol:1e-3 a b
        | None, None -> true
        | _ -> false)
        && List.for_all
             (fun (a : Ifko.Lower.array_param) ->
               let xa = Ifko.Env.to_array e1 a.Ifko.Lower.a_name in
               let xb = Ifko.Env.to_array e2 a.Ifko.Lower.a_name in
               Array.for_all2 (fun u v -> Ifko.Verify.close ~tol:1e-3 u v) xa xb)
             compiled.Ifko.Lower.arrays)
    [ 0; 1; 9; 250 ]

let tune_and_report name source prec flops_per_n =
  Printf.printf "== %s ==\n%!" name;
  let compiled = Ifko.compile_source source in
  print_string (Ifko.Report.to_string (Ifko.analyze compiled));
  List.iter
    (fun cfg ->
      let spec = spec_for compiled ~prec in
      let tuned =
        Ifko.tune ~cfg ~context:Ifko.Timer.Out_of_cache ~spec ~n:80000 ~flops_per_n
          ~test:(differential_test compiled spec) compiled
      in
      Printf.printf "%-8s FKO %7.1f -> ifko %7.1f MFLOPS (%.2fx)   %s\n%!"
        cfg.Ifko.Config.name tuned.Ifko.Driver.fko_mflops tuned.Ifko.Driver.ifko_mflops
        (tuned.Ifko.Driver.ifko_mflops /. tuned.Ifko.Driver.fko_mflops)
        (Ifko.Params.to_string tuned.Ifko.Driver.best_params))
    [ Ifko.Config.p4e; Ifko.Config.opteron ];
  print_newline ()

let () =
  tune_and_report "striad (stream triad)" triad_source Instr.S 2.0;
  tune_and_report "dnrm2sq (squared norm)" nrm2sq_source Instr.D 2.0
