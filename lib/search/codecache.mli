(** Single-flight memo of compiled probe candidates.

    [Driver.tune] produces each candidate by transform pipeline +
    semantic test + decode; this cache keys the finished product by
    (kernel fingerprint, machine, canonical params, check flag, seed)
    so calibration points, multi-size sweeps, fidelity comparisons and
    concurrent serve tunes stop re-doing identical work.  Decoded
    closures are immutable — per-run register/memory state is
    allocated inside [Exec.exec] — so sharing them across domains and
    tunes is safe.

    Concurrent misses on one key run the compute exactly once; other
    callers block until the result lands.  Exceptions from the compute
    (notably [Passcheck.Pass_failed], which must fail the tune) are
    never cached: the in-flight marker is cleared and waiters retry. *)

type result =
  | Illegal  (** the transform pipeline rejected the point *)
  | Test_failed  (** compiled, but the semantic test failed *)
  | Compiled of Cfg.func * Ifko_sim.Exec.compiled
      (** transformed function plus its decoded form, ready to time *)

type t

type stats = { hits : int; misses : int }

val create : ?max_entries:int -> unit -> t
(** [max_entries] bounds the table (default 4096 — a daemon backstop,
    far above one tune's candidate count); completed entries are
    evicted wholesale when it fills, in-flight ones never. *)

val key : kernel:string -> machine:string -> params:string -> check:bool -> seed:int -> string
(** Digest of everything a candidate's compilation outcome depends
    on.  [params] must be the canonical rendering
    ([Params.canonical]). *)

val find_or_compile : t -> key:string -> (unit -> result) -> result
(** Return the cached result for [key], or run [f] (single-flight) and
    cache it.  [f] must be a pure function of [key]. *)

val stats : t -> stats
