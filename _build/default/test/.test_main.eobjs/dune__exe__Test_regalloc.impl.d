test/test_regalloc.ml: Alcotest Cfg Defs Hil_sources Ifko_analysis Ifko_blas Ifko_codegen Ifko_sim Ifko_transform Instr List Params Pipeline Reg Validate Workload
