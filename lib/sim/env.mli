(** Memory images and argument bindings for simulated kernel runs.

    An environment owns a flat byte-addressed memory holding the
    kernel's vectors and its stack/spill area, plus the values bound to
    each kernel parameter.  Arrays are 16-byte aligned (the vector ISA
    requires it) and staggered across pages so distinct operands do not
    collide pathologically in the low-associativity L1. *)

type array_info = { addr : int; len : int; fsize : Instr.fsize }

type binding =
  | Int_arg of int
  | Fp_arg of Instr.fsize * float
  | Array_arg of array_info

type t

val create : ?mem_bytes:int -> unit -> t
(** Fresh environment; default memory size fits the paper's N=80000
    double-precision workloads with room to spare.  The backing buffer
    may come from a pool of recycled buffers ({!release}); either way
    it is all-zero, so pooling is unobservable. *)

val release : t -> unit
(** Scrub the environment's backing buffer to zero and return it to
    the buffer pool for a later {!create} / {!materialize} of the same
    [mem_bytes].  The environment must not be used afterwards.  The
    whole buffer is scrubbed — not just the allocated prefix — so a
    recycled buffer is byte-identical to a fresh one even past the
    allocation cursor. *)

type master
(** An immutable pristine image of an environment: its written prefix,
    bindings and allocation state.  Capture once per (spec, n), then
    {!materialize} per measurement instead of re-running the spec's
    fills. *)

val capture : t -> master
(** Must be called while the environment is pristine (no kernel has
    run in it yet), so that every written byte lies below the
    allocation cursor. *)

val materialize : master -> t
(** A new environment observably identical to the one [capture] saw:
    pooled zeroed buffer of the same size, image blitted back,
    bindings and cursor restored.  Release it with {!release} when the
    measurement is done. *)

val mem : t -> Bytes.t
val stack_base : t -> int

val bind_int : t -> string -> int -> unit
val bind_fp : t -> string -> Instr.fsize -> float -> unit

val alloc_array : t -> string -> Instr.fsize -> int -> unit
(** [alloc_array t name fsize len] reserves and binds an array.
    @raise Invalid_argument when memory is exhausted. *)

val binding : t -> string -> binding
(** @raise Not_found for unbound names. *)

val bindings : t -> (string * binding) list

val set_elem : t -> string -> int -> float -> unit
(** Write element [i] of a bound array (rounding to single precision
    for single-precision arrays). *)

val get_elem : t -> string -> int -> float
(** Read element [i] of a bound array. *)

val fill : t -> string -> (int -> float) -> unit
(** Initialize a whole array from an index function. *)

val to_array : t -> string -> float array
(** Snapshot a bound array's current contents. *)

val iter_array_lines : t -> line:int -> (int -> unit) -> unit
(** Apply a function to the base address of every [line]-byte line of
    every bound array — the timers' cache-warming hook. *)

val set_counts : t -> int -> unit
(** Rebind every integer argument to [n].  Every timer spec binds its
    integer arguments to the element count (BLAS binds ["N"]; generic
    kernels bind each int parameter to the problem size), so this
    retargets the kernel to run over the first [n] elements of the
    bound arrays.  The sampled timer uses it to run the warm-up and
    detailed-window phases against one environment. *)

val advance : t -> elems:int -> unit
(** Slide every bound array forward by [elems] elements (the binding's
    address advances, its length shrinks; scalars are untouched), so a
    subsequent run continues the exact address streams a previous
    phase was consuming — trained prefetch streams stay seamless.
    @raise Invalid_argument when any array has at most [elems]
    elements. *)
