lib/sim/verify.ml: Array Env Exec Float List Printf
