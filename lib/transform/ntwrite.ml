(** Non-temporal writes (WNT).

    Rewrites the stores to the kernel's output arrays into their
    non-temporal forms ([movntps]/[movntpd]-style).  These carry a hint
    that the stored data need not be retained in cache; how the hint is
    honoured varies strongly by architecture — on the P4E-like model a
    streaming store avoids the read-for-ownership, while the
    Opteron-like model penalizes non-temporal stores to lines that are
    also read (see {!Ifko_machine.Config}) — which is precisely why
    the paper leaves the decision to the empirical search. *)

open Ifko_codegen
open Ifko_analysis

let apply (compiled : Lower.compiled) =
  let outputs =
    List.filter_map
      (fun (a : Lower.array_param) -> if a.Lower.a_output then Some a.Lower.a_reg else None)
      compiled.Lower.arrays
  in
  if outputs = [] then Ok ()
  else
    (* the oracle must prove every store a pure affine streaming store
       of an unaliased output array before the hint is sound *)
    match Legality.ntwrite (Legality.analyze compiled) with
    | Error d -> Error d
    | Ok () ->
      let is_output (m : Instr.mem) = List.exists (Reg.equal m.Instr.base) outputs in
      List.iter
        (fun b ->
          b.Block.instrs <-
            List.map
              (fun i ->
                match i with
                | Instr.Fst (sz, m, r) when is_output m -> Instr.Fstnt (sz, m, r)
                | Instr.Vst (sz, m, r) when is_output m -> Instr.Vstnt (sz, m, r)
                | i -> i)
              b.Block.instrs)
        compiled.Lower.func.Cfg.blocks;
      Ok ()
