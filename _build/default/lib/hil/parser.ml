open Ast

exception Error of string * int

type state = { mutable toks : (Lexer.token * int) list }

let fail_at line msg = raise (Error (msg, line))

let peek st =
  match st.toks with [] -> (Lexer.EOF, 0) | tok :: _ -> tok

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let tok = peek st in
  advance st;
  tok

let expect st want =
  let tok, line = next st in
  if tok <> want then
    fail_at line
      (Printf.sprintf "expected %s but found %s" (Lexer.describe want)
         (Lexer.describe tok))

let expect_ident st =
  match next st with
  | Lexer.IDENT s, _ -> s
  | tok, line ->
    fail_at line (Printf.sprintf "expected identifier, found %s" (Lexer.describe tok))

let parse_ty st =
  match next st with
  | Lexer.TINT, _ -> Int
  | Lexer.TSINGLE, _ -> Fp Single
  | Lexer.TDOUBLE, _ -> Fp Double
  | Lexer.TPTR, _ -> (
    match next st with
    | Lexer.TSINGLE, _ -> Ptr Single
    | Lexer.TDOUBLE, _ -> Ptr Double
    | tok, line ->
      fail_at line
        (Printf.sprintf "expected single or double after ptr, found %s"
           (Lexer.describe tok)))
  | tok, line ->
    fail_at line (Printf.sprintf "expected a type, found %s" (Lexer.describe tok))

let rec parse_flags st acc =
  match peek st with
  | Lexer.OUTPUT, _ ->
    advance st;
    parse_flags st (Output :: acc)
  | Lexer.NOPREFETCH, _ ->
    advance st;
    parse_flags st (No_prefetch :: acc)
  | Lexer.MAYALIAS, _ ->
    advance st;
    parse_flags st (May_alias :: acc)
  | _ -> List.rev acc

let parse_param st =
  let name = expect_ident st in
  expect st Lexer.COLON;
  let ty = parse_ty st in
  let flags = parse_flags st [] in
  { p_name = name; p_ty = ty; p_flags = flags }

let rec parse_params st acc =
  let p = parse_param st in
  match peek st with
  | Lexer.COMMA, _ ->
    advance st;
    parse_params st (p :: acc)
  | _ -> List.rev (p :: acc)

(* Expressions: standard precedence climbing over +,- and *,/ with
   unary ABS, unary minus and literal-indexed loads as factors. *)
let rec parse_expr st =
  let lhs = parse_term st in
  parse_expr_rest st lhs

and parse_expr_rest st lhs =
  match peek st with
  | Lexer.PLUS, _ ->
    advance st;
    parse_expr_rest st (Binop (Add, lhs, parse_term st))
  | Lexer.MINUS, _ ->
    advance st;
    parse_expr_rest st (Binop (Sub, lhs, parse_term st))
  | _ -> lhs

and parse_term st =
  let lhs = parse_factor st in
  parse_term_rest st lhs

and parse_term_rest st lhs =
  match peek st with
  | Lexer.STAR, _ ->
    advance st;
    parse_term_rest st (Binop (Mul, lhs, parse_factor st))
  | Lexer.SLASH, _ ->
    advance st;
    parse_term_rest st (Binop (Div, lhs, parse_factor st))
  | _ -> lhs

and parse_factor st =
  match next st with
  | Lexer.INT i, _ -> Int_lit i
  | Lexer.FLOAT f, _ -> Fp_lit f
  | Lexer.MINUS, _ -> Neg (parse_factor st)
  | Lexer.ABS, _ -> Abs (parse_factor st)
  | Lexer.SQRT, _ -> Sqrt (parse_factor st)
  | Lexer.LPAREN, _ ->
    let e = parse_expr st in
    expect st Lexer.RPAREN;
    e
  | Lexer.IDENT name, line -> (
    match peek st with
    | Lexer.LBRACK, _ ->
      advance st;
      let idx =
        match next st with
        | Lexer.INT i, _ -> i
        | Lexer.MINUS, _ -> (
          match next st with
          | Lexer.INT i, _ -> -i
          | tok, l ->
            fail_at l
              (Printf.sprintf "expected literal index, found %s" (Lexer.describe tok)))
        | tok, _ ->
          fail_at line
            (Printf.sprintf "expected literal index, found %s" (Lexer.describe tok))
      in
      expect st Lexer.RBRACK;
      Load (name, idx)
    | _ -> Var name)
  | tok, line ->
    fail_at line (Printf.sprintf "expected expression, found %s" (Lexer.describe tok))

let parse_cond st =
  expect st Lexer.LPAREN;
  let lhs = parse_expr st in
  let op =
    match next st with
    | Lexer.CMP op, _ -> op
    | tok, line ->
      fail_at line (Printf.sprintf "expected comparison, found %s" (Lexer.describe tok))
  in
  let rhs = parse_expr st in
  expect st Lexer.RPAREN;
  (op, lhs, rhs)

let rec parse_stmts st terminators acc =
  let tok, _line = peek st in
  let is_terminator =
    match tok with
    | Lexer.END -> List.mem `End terminators
    | Lexer.LOOP_END -> List.mem `Loop_end terminators
    | Lexer.ELSE -> List.mem `Else terminators
    | Lexer.ENDIF -> List.mem `Endif terminators
    | Lexer.EOF -> true
    | _ -> false
  in
  if is_terminator then List.rev acc
  else
    let stmt = parse_stmt st in
    parse_stmts st terminators (stmt :: acc)

and parse_stmt st =
  match next st with
  | Lexer.LOOP, _ -> Loop (parse_loop st ~opt:false)
  | Lexer.OPTLOOP, _ -> Loop (parse_loop st ~opt:true)
  | Lexer.GOTO, _ ->
    let l = expect_ident st in
    expect st Lexer.SEMI;
    Goto l
  | Lexer.IF, _ -> (
    let op, lhs, rhs = parse_cond st in
    match peek st with
    | Lexer.THEN, _ ->
      advance st;
      let then_body = parse_stmts st [ `Else; `Endif ] [] in
      let else_body =
        match peek st with
        | Lexer.ELSE, _ ->
          advance st;
          parse_stmts st [ `Endif ] []
        | _ -> []
      in
      expect st Lexer.ENDIF;
      If_then (op, lhs, rhs, then_body, else_body)
    | _ ->
      expect st Lexer.GOTO;
      let l = expect_ident st in
      expect st Lexer.SEMI;
      If_goto (op, lhs, rhs, l))
  | Lexer.RETURN, _ -> (
    match peek st with
    | Lexer.SEMI, _ ->
      advance st;
      Return None
    | _ ->
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Return (Some e))
  | Lexer.IDENT name, line -> (
    match next st with
    | Lexer.COLON, _ -> Label name
    | Lexer.EQ, _ ->
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Assign (name, e)
    | Lexer.PLUSEQ, _ -> parse_assign_op st Add name
    | Lexer.MINUSEQ, _ -> parse_assign_op st Sub name
    | Lexer.STAREQ, _ -> parse_assign_op st Mul name
    | Lexer.SLASHEQ, _ -> parse_assign_op st Div name
    | Lexer.LBRACK, _ ->
      let idx =
        match next st with
        | Lexer.INT i, _ -> i
        | tok, l ->
          fail_at l
            (Printf.sprintf "expected literal index, found %s" (Lexer.describe tok))
      in
      expect st Lexer.RBRACK;
      expect st Lexer.EQ;
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Store (name, idx, e)
    | tok, _ ->
      fail_at line
        (Printf.sprintf "unexpected %s after identifier %S" (Lexer.describe tok) name))
  | tok, line ->
    fail_at line (Printf.sprintf "expected statement, found %s" (Lexer.describe tok))

and parse_assign_op st op name =
  let e = parse_expr st in
  expect st Lexer.SEMI;
  Assign_op (op, name, e)

and parse_loop st ~opt =
  let var = expect_ident st in
  expect st Lexer.EQ;
  let from_e = parse_expr st in
  expect st Lexer.COMMA;
  let to_e = parse_expr st in
  let step =
    match peek st with
    | Lexer.COMMA, _ -> (
      advance st;
      match next st with
      | Lexer.INT i, _ -> i
      | Lexer.MINUS, _ -> (
        match next st with
        | Lexer.INT i, _ -> -i
        | tok, line ->
          fail_at line
            (Printf.sprintf "expected step literal, found %s" (Lexer.describe tok)))
      | tok, line ->
        fail_at line (Printf.sprintf "expected step literal, found %s" (Lexer.describe tok)))
    | _ -> 1
  in
  let speculate =
    match peek st with
    | Lexer.SPECULATE, _ ->
      advance st;
      true
    | _ -> false
  in
  expect st Lexer.LOOP_BODY;
  let body = parse_stmts st [ `Loop_end ] [] in
  expect st Lexer.LOOP_END;
  {
    loop_var = var;
    loop_from = from_e;
    loop_to = to_e;
    loop_step = step;
    loop_body = body;
    loop_opt = opt;
    loop_speculate = speculate;
  }

let parse_kernel src =
  let st = { toks = Lexer.tokenize src } in
  expect st Lexer.KERNEL;
  let name = expect_ident st in
  expect st Lexer.LPAREN;
  let params =
    match peek st with
    | Lexer.RPAREN, _ -> []
    | _ -> parse_params st []
  in
  expect st Lexer.RPAREN;
  let ret =
    match peek st with
    | Lexer.RETURNS, _ ->
      advance st;
      Some (parse_ty st)
    | _ -> None
  in
  let locals =
    match peek st with
    | Lexer.VARS, _ ->
      advance st;
      let rec loop acc =
        match peek st with
        | Lexer.BEGIN, _ -> List.rev acc
        | _ ->
          let first = expect_ident st in
          let rec names acc =
            match peek st with
            | Lexer.COMMA, _ ->
              advance st;
              names (expect_ident st :: acc)
            | _ -> List.rev acc
          in
          let all_names = names [ first ] in
          expect st Lexer.COLON;
          let ty = parse_ty st in
          let init =
            match peek st with
            | Lexer.EQ, _ -> (
              advance st;
              match next st with
              | Lexer.FLOAT f, _ -> Some f
              | Lexer.INT i, _ -> Some (float_of_int i)
              | Lexer.MINUS, _ -> (
                match next st with
                | Lexer.FLOAT f, _ -> Some (-.f)
                | Lexer.INT i, _ -> Some (float_of_int (-i))
                | tok, line ->
                  fail_at line
                    (Printf.sprintf "expected initializer, found %s" (Lexer.describe tok)))
              | tok, line ->
                fail_at line
                  (Printf.sprintf "expected initializer, found %s" (Lexer.describe tok)))
            | _ -> None
          in
          expect st Lexer.SEMI;
          loop ({ d_names = all_names; d_ty = ty; d_init = init } :: acc)
      in
      loop []
    | _ -> []
  in
  expect st Lexer.BEGIN;
  let body = parse_stmts st [ `End ] [] in
  expect st Lexer.END;
  { k_name = name; k_params = params; k_locals = locals; k_ret = ret; k_body = body }
