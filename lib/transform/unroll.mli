(** Loop unrolling (UR).

    Duplicates the tunable loop's body [N_u] times "avoiding repetitive
    index and pointer updates": for straight-line bodies the pointer
    bumps of all copies are folded into memory-operand displacements
    with a single update per pointer at the end (the CISC-displacement
    idiom), and the count-down/index updates happen once per unrolled
    iteration.  Bodies with internal control flow (iamax) are unrolled
    by block duplication, retaining per-copy pointer updates.

    Because UR runs after SIMD vectorization, the computational unroll
    is [N_u * veclen] when both are applied.  A scalar cleanup loop is
    materialized (once) to consume remainder iterations. *)

val apply :
  Ifko_codegen.Lower.compiled -> int -> (unit, Ifko_analysis.Diag.t) result
(** [apply compiled n_u] unrolls in place.  No-op when [n_u <= 1] or
    there is no tunable loop; refused (fail-closed, with the
    {!Ifko_analysis.Legality} rejection diagnostic) when the loop
    bookkeeping is stale or the pointer strides are contradictory. *)
