(* Executor semantics: every instruction class, precision rounding,
   branches, traps, the environment, and timer consistency. *)

let gpr i = Reg.virt Reg.Gpr i
let xmm i = Reg.virt Reg.Xmm i
let mem ?(disp = 0) ?index ?(scale = 1) base = Instr.mk_mem ?index ~scale ~disp base

(* run a single-block function returning [ret] *)
let run_ret ?env instrs ret =
  let env = match env with Some e -> e | None -> Ifko_sim.Env.create () in
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <- [ Block.make "entry" ~instrs ~term:(Block.Ret (Some ret)) ];
  (Ifko_sim.Exec.run f env).Ifko_sim.Exec.ret

let check_int msg expected result =
  match result with
  | Some (Ifko_sim.Exec.Rint v) -> Alcotest.(check int) msg expected v
  | _ -> Alcotest.fail (msg ^ ": expected an integer result")

let check_fp ?(tol = 1e-12) msg expected result =
  match result with
  | Some (Ifko_sim.Exec.Rfp v) -> Alcotest.(check (float tol)) msg expected v
  | _ -> Alcotest.fail (msg ^ ": expected a float result")

let test_int_ops () =
  let t op a b = run_ret [ Instr.Ildi (gpr 0, a); Instr.Ildi (gpr 1, b);
                           Instr.Iop (op, gpr 2, gpr 0, Instr.Oreg (gpr 1)) ] (gpr 2) in
  check_int "add" 7 (t Instr.Iadd 3 4);
  check_int "sub" (-1) (t Instr.Isub 3 4);
  check_int "mul" 12 (t Instr.Imul 3 4);
  check_int "and" 2 (t Instr.Iand 3 6);
  check_int "or" 7 (t Instr.Ior 3 6);
  check_int "shl" 24 (t Instr.Ishl 3 3);
  check_int "shr" 2 (t Instr.Ishr 16 3);
  check_int "imm operand" 9
    (run_ret [ Instr.Ildi (gpr 0, 4); Instr.Iop (Instr.Iadd, gpr 1, gpr 0, Instr.Oimm 5) ] (gpr 1))

let test_lea_imov () =
  check_int "lea" 4242
    (run_ret
       [ Instr.Ildi (gpr 0, 4000); Instr.Ildi (gpr 1, 121);
         Instr.Lea (gpr 2, mem ~index:(gpr 1) ~scale:2 ~disp:0 (gpr 0)) ]
       (gpr 2));
  check_int "imov" 5 (run_ret [ Instr.Ildi (gpr 0, 5); Instr.Imov (gpr 1, gpr 0) ] (gpr 1))

let test_fp_ops () =
  let t op a b =
    run_ret
      [ Instr.Fldi (Instr.D, xmm 0, a); Instr.Fldi (Instr.D, xmm 1, b);
        Instr.Fop (Instr.D, op, xmm 2, xmm 0, xmm 1) ]
      (xmm 2)
  in
  check_fp "fadd" 7.5 (t Instr.Fadd 3.25 4.25);
  check_fp "fsub" (-1.0) (t Instr.Fsub 3.25 4.25);
  check_fp "fmul" 13.8125 (t Instr.Fmul 3.25 4.25);
  check_fp "fdiv" 0.5 (t Instr.Fdiv 2.0 4.0);
  check_fp "fmax" 4.25 (t Instr.Fmax 3.25 4.25);
  check_fp "fmin" 3.25 (t Instr.Fmin 3.25 4.25)

let test_single_rounding () =
  (* 0.1 is not representable in binary32: check results are rounded *)
  let r =
    run_ret
      [ Instr.Fldi (Instr.S, xmm 0, 0.1); Instr.Fldi (Instr.S, xmm 1, 0.2);
        Instr.Fop (Instr.S, Instr.Fadd, xmm 2, xmm 0, xmm 1) ]
      (xmm 2)
  in
  match r with
  | Some (Ifko_sim.Exec.Rfp _) ->
    (* re-read through the S lane in a fresh run and compare to the
       Int32-rounded reference *)
    let expected =
      let r32 x = Int32.float_of_bits (Int32.bits_of_float x) in
      r32 (r32 0.1 +. r32 0.2)
    in
    let f = Cfg.create ~name:"t" ~params:[] in
    f.Cfg.blocks <-
      [ Block.make "entry"
          ~instrs:
            [ Instr.Fldi (Instr.S, xmm 0, 0.1); Instr.Fldi (Instr.S, xmm 1, 0.2);
              Instr.Fop (Instr.S, Instr.Fadd, xmm 2, xmm 0, xmm 1) ]
          ~term:(Block.Ret (Some (xmm 2)));
      ];
    let res = Ifko_sim.Exec.run ~ret_fsize:Instr.S f (Ifko_sim.Env.create ()) in
    (match res.Ifko_sim.Exec.ret with
    | Some (Ifko_sim.Exec.Rfp v) -> Alcotest.(check (float 0.0)) "exact binary32" expected v
    | _ -> Alcotest.fail "no result")
  | _ -> Alcotest.fail "no result"

let test_abs_neg () =
  check_fp "fabs" 2.5
    (run_ret [ Instr.Fldi (Instr.D, xmm 0, -2.5); Instr.Fabs (Instr.D, xmm 1, xmm 0) ] (xmm 1));
  check_fp "fneg" 2.5
    (run_ret [ Instr.Fldi (Instr.D, xmm 0, -2.5); Instr.Fneg (Instr.D, xmm 1, xmm 0) ] (xmm 1))

let vector_env () =
  let env = Ifko_sim.Env.create () in
  Ifko_sim.Env.alloc_array env "A" Instr.D 8;
  Ifko_sim.Env.fill env "A" (fun i -> float_of_int (i + 1));
  let addr = match Ifko_sim.Env.binding env "A" with
    | Ifko_sim.Env.Array_arg a -> a.Ifko_sim.Env.addr
    | _ -> assert false
  in
  (env, addr)

let test_vector_ops () =
  let env, _ = vector_env () in
  let f = Cfg.create ~name:"t" ~params:[ ("A", gpr 0) ] in
  f.Cfg.blocks <-
    [ Block.make "entry"
        ~instrs:
          [ Instr.Vld (Instr.D, xmm 0, mem (gpr 0));        (* [1;2] *)
            Instr.Vld (Instr.D, xmm 1, mem ~disp:16 (gpr 0));(* [3;4] *)
            Instr.Vop (Instr.D, Instr.Fmul, xmm 2, xmm 0, xmm 1); (* [3;8] *)
            Instr.Vreduce (Instr.D, Instr.Fadd, xmm 3, xmm 2)     (* 11 *)
          ]
        ~term:(Block.Ret (Some (xmm 3)));
    ];
  (match (Ifko_sim.Exec.run f env).Ifko_sim.Exec.ret with
  | Some (Ifko_sim.Exec.Rfp v) -> Alcotest.(check (float 1e-12)) "vreduce dot" 11.0 v
  | _ -> Alcotest.fail "no result")

let test_vector_store_bcast () =
  let env, _ = vector_env () in
  let f = Cfg.create ~name:"t" ~params:[ ("A", gpr 0) ] in
  f.Cfg.blocks <-
    [ Block.make "entry"
        ~instrs:
          [ Instr.Fldi (Instr.D, xmm 0, 9.0);
            Instr.Vbcast (Instr.D, xmm 1, xmm 0);
            Instr.Vst (Instr.D, mem ~disp:16 (gpr 0), xmm 1);
            Instr.Vldi (Instr.S, xmm 2, 3.0);
            Instr.Vstnt (Instr.S, mem ~disp:32 (gpr 0), xmm 2);
          ]
        ~term:(Block.Ret None);
    ];
  ignore (Ifko_sim.Exec.run f env : Ifko_sim.Exec.result);
  Alcotest.(check (float 0.0)) "bcast lane 2" 9.0 (Ifko_sim.Env.get_elem env "A" 2);
  Alcotest.(check (float 0.0)) "bcast lane 3" 9.0 (Ifko_sim.Env.get_elem env "A" 3);
  (* the four 3.0f singles occupy one double-slot pair *)
  let bits = Bytes.get_int32_le (Ifko_sim.Env.mem env)
      ((match Ifko_sim.Env.binding env "A" with
        | Ifko_sim.Env.Array_arg a -> a.Ifko_sim.Env.addr
        | _ -> assert false) + 32) in
  Alcotest.(check (float 0.0)) "vstnt single lane" 3.0 (Int32.float_of_bits bits)

let test_vcmp_movmsk_extract () =
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <-
    [ Block.make "entry"
        ~instrs:
          [ Instr.Vldi (Instr.S, xmm 0, 2.0);
            Instr.Vldi (Instr.S, xmm 1, 1.0);
            (* make lane 2 of xmm1 bigger than 2.0 via extract trickery is
               complex; instead compare equal vectors lane-wise *)
            Instr.Vcmp (Instr.S, Instr.Gt, xmm 2, xmm 0, xmm 1);
            Instr.Vmovmsk (Instr.S, gpr 0, xmm 2);
          ]
        ~term:(Block.Ret (Some (gpr 0)));
    ];
  check_int "all four lanes true" 0b1111 (Ifko_sim.Exec.run f (Ifko_sim.Env.create ())).Ifko_sim.Exec.ret;
  let f2 = Cfg.create ~name:"t" ~params:[] in
  f2.Cfg.blocks <-
    [ Block.make "entry"
        ~instrs:
          [ Instr.Vldi (Instr.D, xmm 0, 1.0);
            Instr.Vldi (Instr.D, xmm 1, 2.0);
            Instr.Vcmp (Instr.D, Instr.Gt, xmm 2, xmm 0, xmm 1);
            Instr.Vmovmsk (Instr.D, gpr 0, xmm 2);
          ]
        ~term:(Block.Ret (Some (gpr 0)));
    ];
  check_int "no lane true" 0 (Ifko_sim.Exec.run f2 (Ifko_sim.Env.create ())).Ifko_sim.Exec.ret;
  let env, _ = vector_env () in
  let f3 = Cfg.create ~name:"t" ~params:[ ("A", gpr 0) ] in
  f3.Cfg.blocks <-
    [ Block.make "entry"
        ~instrs:
          [ Instr.Vld (Instr.D, xmm 0, mem (gpr 0));
            Instr.Vextract (Instr.D, xmm 1, xmm 0, 1);
          ]
        ~term:(Block.Ret (Some (xmm 1)));
    ];
  check_fp "extract lane 1" 2.0 (Ifko_sim.Exec.run f3 env).Ifko_sim.Exec.ret

let test_branches () =
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <-
    [ Block.make "entry" ~instrs:[ Instr.Ildi (gpr 0, 10); Instr.Ildi (gpr 1, 0) ]
        ~term:(Block.Jmp "loop");
      Block.make "loop"
        ~instrs:[ Instr.Iop (Instr.Iadd, gpr 1, gpr 1, Instr.Oimm 3) ]
        ~term:
          (Block.Br
             { cmp = Instr.Ge; lhs = gpr 0; rhs = Instr.Oimm 2; ifso = "loop"; ifnot = "out";
               dec = 2 });
      Block.make "out" ~term:(Block.Ret (Some (gpr 1)));
    ];
  (* counter 10: decremented by 2 per pass, continues while >= 2:
     passes at 8,6,4,2 then exits at 0 -> 5 additions of 3 *)
  check_int "fused countdown" 15 (Ifko_sim.Exec.run f (Ifko_sim.Env.create ())).Ifko_sim.Exec.ret

let test_fbr () =
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <-
    [ Block.make "entry"
        ~instrs:[ Instr.Fldi (Instr.D, xmm 0, 1.5); Instr.Fldi (Instr.D, xmm 1, 2.5) ]
        ~term:
          (Block.Fbr
             { fsize = Instr.D; cmp = Instr.Lt; lhs = xmm 0; rhs = xmm 1; ifso = "yes";
               ifnot = "no" });
      Block.make "yes" ~instrs:[ Instr.Ildi (gpr 0, 1) ] ~term:(Block.Ret (Some (gpr 0)));
      Block.make "no" ~instrs:[ Instr.Ildi (gpr 0, 0) ] ~term:(Block.Ret (Some (gpr 0)));
    ];
  check_int "float branch taken" 1 (Ifko_sim.Exec.run f (Ifko_sim.Env.create ())).Ifko_sim.Exec.ret

let expect_trap name f env =
  match Ifko_sim.Exec.run f env with
  | exception Ifko_sim.Exec.Trap _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected a trap")

let test_traps () =
  let env, _ = vector_env () in
  let f = Cfg.create ~name:"t" ~params:[ ("A", gpr 0) ] in
  f.Cfg.blocks <-
    [ Block.make "entry"
        ~instrs:[ Instr.Vld (Instr.D, xmm 0, mem ~disp:8 (gpr 0)) ]
        ~term:(Block.Ret None);
    ];
  expect_trap "unaligned vector load" f env;
  let f2 = Cfg.create ~name:"t" ~params:[] in
  f2.Cfg.blocks <- [ Block.make "entry" ~term:(Block.Jmp "nowhere") ];
  expect_trap "unknown label" f2 (Ifko_sim.Env.create ());
  let f3 = Cfg.create ~name:"t" ~params:[] in
  f3.Cfg.blocks <-
    [ Block.make "entry" ~instrs:[ Instr.Ildi (gpr 0, 0) ] ~term:(Block.Jmp "entry") ];
  (match Ifko_sim.Exec.run ~max_instrs:100 f3 (Ifko_sim.Env.create ()) with
  | exception Ifko_sim.Exec.Trap msg ->
    Alcotest.(check bool) "budget trap" true (Test_util.contains msg "budget")
  | _ -> Alcotest.fail "expected instruction-budget trap");
  let f4 = Cfg.create ~name:"t" ~params:[ ("A", gpr 0) ] in
  f4.Cfg.blocks <-
    [ Block.make "entry"
        ~instrs:[ Instr.Fld (Instr.D, xmm 0, mem ~disp:(1 lsl 30) (gpr 0)) ]
        ~term:(Block.Ret None);
    ];
  expect_trap "out of bounds" f4 env

let test_spill_roundtrip () =
  (* frame-slot traffic through the reserved frame pointer *)
  let env = Ifko_sim.Env.create () in
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.frame_slots <- 2;
  f.Cfg.blocks <-
    [ Block.make "entry"
        ~instrs:
          [ Instr.Ildi (gpr 0, 1234);
            Instr.Ist (mem ~disp:16 Reg.frame_ptr, gpr 0);
            Instr.Ildi (gpr 0, 0);
            Instr.Ild (gpr 1, mem ~disp:16 Reg.frame_ptr);
          ]
        ~term:(Block.Ret (Some (gpr 1)));
    ];
  check_int "int spill roundtrip" 1234 (Ifko_sim.Exec.run f env).Ifko_sim.Exec.ret;
  let f2 = Cfg.create ~name:"t" ~params:[] in
  f2.Cfg.blocks <-
    [ Block.make "entry"
        ~instrs:
          [ Instr.Vldi (Instr.S, xmm 0, 7.5);
            Instr.Vst (Instr.D, mem Reg.frame_ptr, xmm 0);
            Instr.Vldi (Instr.S, xmm 0, 0.0);
            Instr.Vld (Instr.D, xmm 1, mem Reg.frame_ptr);
            Instr.Vreduce (Instr.S, Instr.Fadd, xmm 2, xmm 1);
          ]
        ~term:(Block.Ret (Some (xmm 2)));
    ];
  let res = Ifko_sim.Exec.run ~ret_fsize:Instr.S f2 (Ifko_sim.Env.create ()) in
  (match res.Ifko_sim.Exec.ret with
  | Some (Ifko_sim.Exec.Rfp v) ->
    Alcotest.(check (float 1e-6)) "xmm spill keeps all 4 single lanes" 30.0 v
  | _ -> Alcotest.fail "no result")

let test_env () =
  let env = Ifko_sim.Env.create ~mem_bytes:(1 lsl 20) () in
  Ifko_sim.Env.alloc_array env "A" Instr.S 10;
  Ifko_sim.Env.alloc_array env "B" Instr.D 10;
  (match (Ifko_sim.Env.binding env "A", Ifko_sim.Env.binding env "B") with
  | Ifko_sim.Env.Array_arg a, Ifko_sim.Env.Array_arg b ->
    Alcotest.(check bool) "16-byte aligned" true
      (a.Ifko_sim.Env.addr mod 16 = 0 && b.Ifko_sim.Env.addr mod 16 = 0);
    Alcotest.(check bool) "disjoint" true
      (b.Ifko_sim.Env.addr >= a.Ifko_sim.Env.addr + 40
      || a.Ifko_sim.Env.addr >= b.Ifko_sim.Env.addr + 80)
  | _ -> Alcotest.fail "array bindings");
  Ifko_sim.Env.set_elem env "B" 3 1.25;
  Alcotest.(check (float 0.0)) "set/get" 1.25 (Ifko_sim.Env.get_elem env "B" 3);
  Ifko_sim.Env.set_elem env "A" 0 0.1;
  Alcotest.(check (float 0.0)) "single rounding on store"
    (Int32.float_of_bits (Int32.bits_of_float 0.1))
    (Ifko_sim.Env.get_elem env "A" 0);
  Alcotest.check_raises "oob get" (Invalid_argument "Env.get_elem: index out of bounds")
    (fun () -> ignore (Ifko_sim.Env.get_elem env "A" 10 : float))

let test_verify_tolerance () =
  Alcotest.(check bool) "close" true (Ifko_sim.Verify.close ~tol:1e-6 1.0 (1.0 +. 1e-8));
  Alcotest.(check bool) "not close" false (Ifko_sim.Verify.close ~tol:1e-9 1.0 1.1)

let test_timer_extrapolation_close () =
  (* the extrapolated timing must track full simulation closely *)
  let id = { Ifko_blas.Defs.routine = Ifko_blas.Defs.Dot; prec = Instr.D } in
  let compiled = Ifko_blas.Hil_sources.compile id in
  let cfg = Ifko_machine.Config.p4e in
  let params = Ifko_transform.Params.default ~line_bytes:128 (Ifko_analysis.Report.analyze compiled) in
  let func = Ifko_search.Driver.compile_point ~cfg compiled params in
  let spec = Ifko_blas.Workload.timer_spec id ~seed:5 in
  let n = 20000 in
  let extrap = Ifko_sim.Timer.measure ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n func in
  let exact = Ifko_sim.Timer.exact ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec ~n func in
  let err = Float.abs (extrap -. exact) /. exact in
  if err > 0.05 then
    Alcotest.failf "extrapolation error %.1f%% (extrap %.0f vs exact %.0f)" (100.0 *. err)
      extrap exact

let test_env_pool_unobservable () =
  let e1 = Ifko_sim.Env.create ~mem_bytes:(1 lsl 16) () in
  Ifko_sim.Env.alloc_array e1 "A" Instr.D 64;
  Ifko_sim.Env.fill e1 "A" (fun i -> float_of_int i +. 0.5);
  (* capture a master, dirty the environment further, then release it *)
  let m = Ifko_sim.Env.capture e1 in
  Ifko_sim.Env.set_elem e1 "A" 0 99.0;
  Ifko_sim.Env.release e1;
  (* a same-size create may recycle e1's buffer and must be all-zero *)
  let e2 = Ifko_sim.Env.create ~mem_bytes:(1 lsl 16) () in
  let dirty = ref false in
  Bytes.iter (fun c -> if c <> '\000' then dirty := true) (Ifko_sim.Env.mem e2);
  Alcotest.(check bool) "recycled buffer is zeroed" false !dirty;
  (* materialize restores the captured image, not the later edit *)
  let e3 = Ifko_sim.Env.materialize m in
  Alcotest.(check (float 0.0)) "materialized image is the captured one" 0.5
    (Ifko_sim.Env.get_elem e3 "A" 0);
  Alcotest.(check (float 0.0)) "full image round-trips" 63.5
    (Ifko_sim.Env.get_elem e3 "A" 63);
  Ifko_sim.Env.release e2;
  Ifko_sim.Env.release e3

let test_pooled_measure_stability () =
  (* measurements stay bit-identical while the machine arena and the
     environment pool recycle state underneath them: a full measure, a
     sampled measure of the same kernel, and a second full measure (on
     recycled machine + buffers) must agree exactly, across fidelities
     interleaved in any order *)
  let id = { Ifko_blas.Defs.routine = Ifko_blas.Defs.Dot; prec = Instr.D } in
  let compiled = Ifko_blas.Hil_sources.compile id in
  let cfg = Ifko_machine.Config.p4e in
  let params = Ifko_transform.Params.default ~line_bytes:128 (Ifko_analysis.Report.analyze compiled) in
  let func = Ifko_search.Driver.compile_point ~cfg compiled params in
  let cf = Ifko_sim.Exec.compile func in
  let spec = Ifko_blas.Workload.timer_spec id ~seed:5 in
  let measure fidelity =
    (Ifko_sim.Timer.measure_ext ~fidelity ~cfg ~context:Ifko_sim.Timer.Out_of_cache ~spec
       ~n:80000 cf)
      .Ifko_sim.Timer.m_cycles
  in
  let full1 = measure Ifko_sim.Timer.Full in
  let samp1 = measure Ifko_sim.Timer.Sampled in
  let full2 = measure Ifko_sim.Timer.Full in
  let samp2 = measure Ifko_sim.Timer.Sampled in
  Alcotest.(check (float 0.0)) "full is stable across pool recycling" full1 full2;
  Alcotest.(check (float 0.0)) "sampled is stable across pool recycling" samp1 samp2

(* ---------- timing-model sanity ---------- *)

let timed_run f =
  let cfg = Ifko_machine.Config.p4e in
  let ms = Ifko_machine.Memsys.create cfg in
  Ifko_machine.Memsys.reset ms ~flush:true;
  (Ifko_sim.Exec.run ~timing:(cfg, ms) f (Ifko_sim.Env.create ())).Ifko_sim.Exec.cycles

let test_timing_dependent_chain () =
  (* n dependent adds serialize on the add latency; n independent adds
     pipeline at the unit's throughput *)
  let cfg = Ifko_machine.Config.p4e in
  let n = 64 in
  let chain =
    let f = Cfg.create ~name:"t" ~params:[] in
    f.Cfg.blocks <-
      [ Block.make "entry"
          ~instrs:
            (Instr.Fldi (Instr.D, xmm 0, 1.0)
            :: List.init n (fun _ -> Instr.Fop (Instr.D, Instr.Fadd, xmm 0, xmm 0, xmm 0)))
          ~term:(Block.Ret (Some (xmm 0)));
      ];
    timed_run f
  in
  let parallel =
    let f = Cfg.create ~name:"t" ~params:[] in
    f.Cfg.blocks <-
      [ Block.make "entry"
          ~instrs:
            (Instr.Fldi (Instr.D, xmm 0, 1.0)
            :: List.init n (fun i ->
                   Instr.Fop (Instr.D, Instr.Fadd, xmm (1 + (i mod 7)), xmm 0, xmm 0)))
          ~term:(Block.Ret (Some (xmm 1)));
      ];
    timed_run f
  in
  Alcotest.(check bool)
    (Printf.sprintf "chain %.0f >= n*lat" chain)
    true
    (chain >= float_of_int (n * cfg.Ifko_machine.Config.fadd_lat));
  Alcotest.(check bool)
    (Printf.sprintf "independent %.0f much faster than chain %.0f" parallel chain)
    true
    (parallel < chain /. 2.0)

let test_timing_mispredict () =
  (* an alternating branch defeats the one-bit predictor; a monotone
     branch does not *)
  let run_pattern flip =
    let f = Cfg.create ~name:"t" ~params:[] in
    f.Cfg.blocks <-
      [ Block.make "entry"
          ~instrs:[ Instr.Ildi (gpr 0, 200); Instr.Ildi (gpr 1, 0) ]
          ~term:(Block.Jmp "loop");
        Block.make "loop"
          ~instrs:
            (if flip then
               [ Instr.Iop (Instr.Iand, gpr 2, gpr 0, Instr.Oimm 1) ]
             else [ Instr.Ildi (gpr 2, 0) ])
          ~term:
            (Block.Br
               { cmp = Instr.Eq; lhs = gpr 2; rhs = Instr.Oimm 1; ifso = "odd"; ifnot = "even";
                 dec = 0 });
        Block.make "odd" ~instrs:[ Instr.Iop (Instr.Iadd, gpr 1, gpr 1, Instr.Oimm 1) ]
          ~term:(Block.Jmp "next");
        Block.make "even" ~term:(Block.Jmp "next");
        Block.make "next"
          ~term:
            (Block.Br
               { cmp = Instr.Ge; lhs = gpr 0; rhs = Instr.Oimm 1; ifso = "loop"; ifnot = "out";
                 dec = 1 });
        Block.make "out" ~term:(Block.Ret (Some (gpr 1)));
      ];
    timed_run f
  in
  let alternating = run_pattern true and steady = run_pattern false in
  Alcotest.(check bool)
    (Printf.sprintf "mispredicts cost (%.0f vs %.0f)" alternating steady)
    true
    (alternating > steady +. 100.0)

let test_timing_mshr_limit () =
  (* more outstanding misses than MSHRs: completions spread out *)
  let cfg = Ifko_machine.Config.p4e in
  let ms = Ifko_machine.Memsys.create cfg in
  Ifko_machine.Memsys.reset ms ~flush:true;
  (* use far-apart addresses so the stream prefetcher stays out of it *)
  let completions =
    List.init 16 (fun i -> Ifko_machine.Memsys.load ms ~addr:(65536 * (i + 1)) ~now:0.0)
  in
  let first = List.hd completions and last = List.nth completions 15 in
  Alcotest.(check bool)
    (Printf.sprintf "16 misses cannot all overlap (%.0f .. %.0f)" first last)
    true
    (last -. first > 100.0)

let suite =
  [ Alcotest.test_case "int ops" `Quick test_int_ops;
    Alcotest.test_case "lea/imov" `Quick test_lea_imov;
    Alcotest.test_case "fp ops" `Quick test_fp_ops;
    Alcotest.test_case "single rounding" `Quick test_single_rounding;
    Alcotest.test_case "abs/neg" `Quick test_abs_neg;
    Alcotest.test_case "vector ops" `Quick test_vector_ops;
    Alcotest.test_case "vector store/bcast" `Quick test_vector_store_bcast;
    Alcotest.test_case "vcmp/movmsk/extract" `Quick test_vcmp_movmsk_extract;
    Alcotest.test_case "fused countdown branch" `Quick test_branches;
    Alcotest.test_case "float branch" `Quick test_fbr;
    Alcotest.test_case "traps" `Quick test_traps;
    Alcotest.test_case "spill roundtrip" `Quick test_spill_roundtrip;
    Alcotest.test_case "environment" `Quick test_env;
    Alcotest.test_case "verify tolerance" `Quick test_verify_tolerance;
    Alcotest.test_case "env pool unobservable" `Quick test_env_pool_unobservable;
    Alcotest.test_case "pooled measure stability" `Quick test_pooled_measure_stability;
    Alcotest.test_case "timer extrapolation" `Quick test_timer_extrapolation_close;
    Alcotest.test_case "timing: dependency chains" `Quick test_timing_dependent_chain;
    Alcotest.test_case "timing: mispredicts" `Quick test_timing_mispredict;
    Alcotest.test_case "timing: MSHR limit" `Quick test_timing_mshr_limit;
  ]
