type t = {
  line : int;
  sets : int;
  assoc : int;
  line_shift : int;  (** log2 line when a power of two, else -1 *)
  set_mask : int;  (** sets - 1 when a power of two, else -1 *)
  tags : int array;  (** -1 = invalid; indexed [set * assoc + way] *)
  dirty : bool array;
  lru : int array;  (** higher = more recently used *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let log2_exact n =
  let rec go k = if 1 lsl k = n then k else if 1 lsl k > n then -1 else go (k + 1) in
  if n > 0 then go 0 else -1

let create (lvl : Config.cache_level) =
  let sets = max 1 (lvl.Config.size / (lvl.Config.line * lvl.Config.assoc)) in
  let ways = sets * lvl.Config.assoc in
  {
    line = lvl.Config.line;
    sets;
    assoc = lvl.Config.assoc;
    line_shift = log2_exact lvl.Config.line;
    set_mask = (if log2_exact sets >= 0 then sets - 1 else -1);
    tags = Array.make ways (-1);
    dirty = Array.make ways false;
    lru = Array.make ways 0;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let line_bytes t = t.line

(* Addresses are non-negative (the simulator bounds-checks before any
   cache traffic), so shift/mask agree with the division forms on
   every address that reaches us; odd-sized configs fall back. *)
let[@inline] tag_of t addr =
  if t.line_shift >= 0 then addr asr t.line_shift else addr / t.line

let[@inline] set_of t addr =
  if t.set_mask >= 0 then tag_of t addr land t.set_mask else tag_of t addr mod t.sets

let[@inline] line_base t addr =
  if t.line_shift >= 0 then addr land lnot (t.line - 1) else addr - (addr mod t.line)

(* Returns the way index, or -1 on a miss.  An int sentinel rather
   than an option: this runs once or twice per simulated memory
   instruction, and a [Some] per lookup is allocation the hot loop
   can't afford. *)
let find_way t addr =
  let base = set_of t addr * t.assoc and tag = tag_of t addr in
  let rec go w =
    if w >= t.assoc then -1
    else if Array.unsafe_get t.tags (base + w) = tag then base + w
    else go (w + 1)
  in
  go 0

let[@inline] touch t idx =
  t.clock <- t.clock + 1;
  t.lru.(idx) <- t.clock

let access t ~addr ~write =
  let idx = find_way t addr in
  if idx >= 0 then begin
    t.hits <- t.hits + 1;
    if write then t.dirty.(idx) <- true;
    touch t idx;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    false
  end

let probe t ~addr = find_way t addr >= 0

let victim_way t addr =
  let base = set_of t addr * t.assoc in
  let best = ref base in
  for w = 1 to t.assoc - 1 do
    if t.tags.(base + w) = -1 then (if t.tags.(!best) <> -1 then best := base + w)
    else if t.tags.(!best) <> -1 && t.lru.(base + w) < t.lru.(!best) then best := base + w
  done;
  !best

let insert t ~addr ~write =
  let idx = find_way t addr in
  if idx >= 0 then begin
    if write then t.dirty.(idx) <- true;
    touch t idx;
    None
  end
  else begin
    let idx = victim_way t addr in
    let evicted =
      if t.tags.(idx) <> -1 && t.dirty.(idx) then Some (t.tags.(idx) * t.line) else None
    in
    t.tags.(idx) <- tag_of t addr;
    t.dirty.(idx) <- write;
    touch t idx;
    evicted
  end

let invalidate t ~addr =
  let idx = find_way t addr in
  if idx >= 0 then begin
    let was_dirty = t.dirty.(idx) in
    t.tags.(idx) <- -1;
    t.dirty.(idx) <- false;
    was_dirty
  end
  else false

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false

let stats t = (t.hits, t.misses)

let dirty_lines t =
  let n = ref 0 in
  Array.iteri (fun i d -> if d && t.tags.(i) <> -1 then incr n) t.dirty;
  !n

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
