open Ifko_blas
open Ifko_machine

type method_id = Gcc_ref | Icc_ref | Icc_prof | Atlas | Fko | Ifko

let method_name = function
  | Gcc_ref -> "gcc+ref"
  | Icc_ref -> "icc+ref"
  | Icc_prof -> "icc+prof"
  | Atlas -> "ATLAS"
  | Fko -> "FKO"
  | Ifko -> "ifko"

let methods = [ Gcc_ref; Icc_ref; Icc_prof; Atlas; Fko; Ifko ]

type kernel_result = {
  kernel : Defs.kernel_id;
  display_name : string;
  mflops : (method_id * float) list;
  atlas_candidate : string;
  tuned : Ifko_search.Driver.tuned;
  verified : bool;
}

type study = {
  cfg : Config.t;
  context : Ifko_sim.Timer.context;
  n : int;
  seed : int;
  results : kernel_result list;
}

(* The tester used for every method: exact-ish comparison against the
   reference implementation on sizes that exercise remainder loops. *)
let make_test id ~seed =
  let sizes = [ 0; 1; 5; 63; 64; 257 ] in
  fun func ->
    let cf = Ifko_sim.Exec.compile func in
    List.for_all
      (fun n ->
        let env = Workload.make_env id ~seed:(seed + 1) n in
        let expect = Workload.expectation id ~seed:(seed + 1) n in
        let tol = Workload.tolerance id ~n in
        Ifko_sim.Verify.check_compiled ~tol ~ret_fsize:id.Defs.prec cf env expect = Ok ())
      sizes

let time_func ?store ~kind ~prov ~seed ~cfg ~context ~spec ~n ~flops_per_n func =
  match
    Ifko_store.Store.cached ?store
      ~key:
        (Ifko_store.Store.timing_key ~kind ~func:(Cfg.to_string func)
           ~machine:cfg.Config.name
           ~context:(Ifko_sim.Timer.context_name context)
           ~n ~seed)
      ~params:kind ~prov
      (fun () ->
        let cycles = Ifko_sim.Timer.measure ~cfg ~context ~spec ~n func in
        Ifko_store.Store.Timed
          { cycles; mflops = Ifko_sim.Timer.mflops ~cfg ~flops_per_n ~n ~cycles })
  with
  | Ifko_store.Store.Timed { mflops; _ } -> mflops
  | Ifko_store.Store.Test_failed | Ifko_store.Store.Illegal -> neg_infinity

let run_kernel ?store ?jobs ~cfg ~context ~n ~seed id =
  let compiled = Hil_sources.compile id in
  (* per the paper (§3.2.1), the native compilers get the
     straightforward scoped-if formulation of iamax *)
  let compiled_for_cc =
    if id.Defs.routine = Defs.Iamax then Hil_sources.compile_straightforward id
    else compiled
  in
  let spec = Workload.timer_spec id ~seed in
  let flops_per_n = Defs.flops_per_n id.Defs.routine in
  let test = make_test id ~seed in
  let prov =
    Printf.sprintf "%s@%s/%s/n=%d" (Defs.name id) cfg.Config.name
      (Ifko_sim.Timer.context_name context) n
  in
  let time ~kind = time_func ?store ~kind ~prov ~seed ~cfg ~context ~spec ~n ~flops_per_n in
  let verified = ref true in
  let check func = if not (test func) then verified := false in
  (* native-compiler models *)
  let compiler_models =
    List.map
      (fun (m : Ifko_baselines.Compiler_model.t) ->
        let func = Ifko_baselines.Compiler_model.compile m ~cfg ~context compiled_for_cc in
        check func;
        ( m.Ifko_baselines.Compiler_model.name,
          time ~kind:("model:" ^ m.Ifko_baselines.Compiler_model.name) func ))
      Ifko_baselines.Compiler_model.all
  in
  let of_model name = List.assoc name compiler_models in
  (* ATLAS's own empirical search over its hand-tuned collection *)
  let atlas = Ifko_baselines.Atlas_search.select ?store ~cfg ~context ~n ~seed id in
  check atlas.Ifko_baselines.Atlas_search.func;
  (* the iterative and empirical compilation *)
  let tuned =
    Ifko_search.Driver.tune ?store ?jobs ~seed ~cfg ~context ~spec ~n ~flops_per_n ~test
      compiled
  in
  check tuned.Ifko_search.Driver.best_func;
  {
    kernel = id;
    display_name = atlas.Ifko_baselines.Atlas_search.kernel_name;
    mflops =
      [ (Gcc_ref, of_model "gcc");
        (Icc_ref, of_model "icc");
        (Icc_prof, of_model "icc+prof");
        (Atlas, atlas.Ifko_baselines.Atlas_search.mflops);
        (Fko, tuned.Ifko_search.Driver.fko_mflops);
        (Ifko, tuned.Ifko_search.Driver.ifko_mflops);
      ];
    atlas_candidate = atlas.Ifko_baselines.Atlas_search.candidate;
    tuned;
    verified = !verified;
  }

let run_study ?(kernels = Defs.all) ?(progress = fun _ -> ()) ?store ?jobs ~cfg ~context
    ~n ~seed () =
  let results =
    List.map
      (fun id ->
        let r = run_kernel ?store ?jobs ~cfg ~context ~n ~seed id in
        progress
          (Printf.sprintf "%s/%s %-8s best=%s ifko=%.0f MFLOPS%s" cfg.Config.name
             (Ifko_sim.Timer.context_name context)
             r.display_name
             (method_name
                (fst
                   (List.fold_left
                      (fun (bm, bv) (m, v) -> if v > bv then (m, v) else (bm, bv))
                      (Gcc_ref, neg_infinity) r.mflops)))
             (List.assoc Ifko r.mflops)
             (if r.verified then "" else "  [VERIFY FAILED]"))
        |> fun () -> r)
      kernels
  in
  { cfg; context; n; seed; results }

(* Start from neg_infinity, matching run_study's best-method fold: a
   kernel whose every method failed timing yields neg_infinity, which
   Stats.percent_of guards (rather than a silent divide by 0.0). *)
let best_mflops r = List.fold_left (fun acc (_, v) -> Float.max acc v) neg_infinity r.mflops

let percent r m =
  Ifko_util.Stats.percent_of ~best:(best_mflops r) (List.assoc m r.mflops)

let average_percent study m =
  Ifko_util.Stats.mean (List.map (fun r -> percent r m) study.results)

let vector_average_percent study m =
  let vec =
    List.filter (fun r -> r.kernel.Defs.routine <> Defs.Iamax) study.results
  in
  if vec = [] then 0.0 else Ifko_util.Stats.mean (List.map (fun r -> percent r m) vec)
