(** Dead-code elimination.

    Removes instructions whose results are never used (per global
    liveness) and that have no side effect.  Together with copy
    propagation this cleans the naive lowering output and, after loop
    transformations, removes index maintenance the body no longer
    needs. *)

open Ifko_analysis

let has_side_effect i =
  Instr.is_store i || (match i with Instr.Prefetch _ -> true | _ -> false)

(* Faint-code elimination: a register whose only uses are its own pure
   self-updates ([r <- r op imm]) keeps itself alive through the loop,
   so liveness-based elimination never removes it (the unrolled loop's
   unused index maintenance is the canonical case).  Remove such
   updates directly. *)
let remove_faint (f : Cfg.func) =
  let self_update r i =
    match i with
    | Instr.Iop (_, d, s, Instr.Oimm _) -> Reg.equal d r && Reg.equal s r
    | _ -> false
  in
  let foreign_use : (Reg.t, unit) Hashtbl.t = Hashtbl.create 32 in
  let note r = Hashtbl.replace foreign_use r () in
  List.iter
    (fun b ->
      List.iter
        (fun i -> List.iter (fun r -> if not (self_update r i) then note r) (Instr.uses i))
        b.Block.instrs;
      List.iter note (Block.term_uses b.Block.term);
      List.iter note (Block.term_defs b.Block.term))
    f.Cfg.blocks;
  let changed = ref false in
  List.iter
    (fun b ->
      b.Block.instrs <-
        List.filter
          (fun i ->
            match i with
            | Instr.Iop (_, d, s, Instr.Oimm _)
              when Reg.equal d s && not (Hashtbl.mem foreign_use d) ->
              changed := true;
              false
            | _ -> true)
          b.Block.instrs)
    f.Cfg.blocks;
  !changed

let run (f : Cfg.func) =
  let faint = remove_faint f in
  let live = Liveness.compute f in
  let changed = ref false in
  List.iter
    (fun b ->
      let annotated = Liveness.live_before_each live b in
      let kept =
        List.filter_map
          (fun (i, live_after) ->
            let dead =
              (not (has_side_effect i))
              && Instr.defs i <> []
              && List.for_all (fun d -> not (Reg.Set.mem d live_after)) (Instr.defs i)
            in
            if dead then begin
              changed := true;
              None
            end
            else Some i)
          annotated
      in
      b.Block.instrs <- kept)
    f.Cfg.blocks;
  faint || !changed
