(** Kernel timers.

    Mirrors the paper's methodology on top of the simulator: each
    timing is repeated and the minimum taken (the simulator is
    deterministic, so this guards the harness rather than noise), and
    two usage contexts are supported — operands out of cache (caches
    flushed before each trial) and operands preloaded into L2.

    Large out-of-cache problems are measured by simulating two smaller,
    page-aligned problem sizes in steady state and extrapolating the
    cycle count linearly; {!val-exact} and the extrapolated path agree
    to well under a percent on streaming kernels (checked in the test
    suite and by the ablation bench). *)

type context = Out_of_cache | In_l2

val context_name : context -> string

type spec = {
  make_env : int -> Env.t;  (** environment builder for a problem size *)
  ret_fsize : Instr.fsize;
}

val exact :
  cfg:Ifko_machine.Config.t -> context:context -> spec:spec -> n:int -> Cfg.func -> float
(** Simulate the full problem of size [n]; returns cycles. *)

val measure :
  ?reps:int ->
  cfg:Ifko_machine.Config.t ->
  context:context ->
  spec:spec ->
  n:int ->
  Cfg.func ->
  float
(** Cycle count for problem size [n] under [context], using
    steady-state extrapolation for large out-of-cache problems.
    [reps] repeats each timing and keeps the minimum (default 1 — the
    simulator is deterministic).  Compiles the function once and reuses
    the decoded form across samples and reps. *)

val measure_compiled :
  ?reps:int ->
  cfg:Ifko_machine.Config.t ->
  context:context ->
  spec:spec ->
  n:int ->
  Exec.compiled ->
  float
(** {!measure} for already-compiled code — for callers that time the
    same candidate in several contexts or at several sizes. *)

val mflops :
  cfg:Ifko_machine.Config.t -> flops_per_n:float -> n:int -> cycles:float -> float
(** Convert cycles to the MFLOPS the paper reports. *)
