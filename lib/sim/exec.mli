(** The LIL executor: architectural semantics plus (optionally) the
    cycle-approximate timing model.

    Two engines share one semantics definition:

    - {!run_reference}, the original tree-walking interpreter — one
      [match] per executed instruction, labels looked up by string.
      It stays as the oracle the compiled engine is checked against.
    - {!compile}/{!exec}, a decode-once threaded-code engine: each
      instruction is specialized into a closure at compile time
      (operand slots, memory shapes, comparison/arithmetic functions
      all resolved once), labels become integer block indices, and the
      register files are pre-sized from a decode-time scan.  One
      decode yields separate pure-semantics and semantics+timing
      closure arrays, so untimed runs pay nothing for the timing
      model.  The two engines are bit-identical: same values, same
      trap messages at the same points, same
      [cycles]/[instr_count]/[uop_count].

    The timing model is a greedy out-of-order scheduler — a
    width-limited front end, per-unit service times, register-ready
    times for true (read-after-write) dependencies only (register
    renaming removes the false ones, as on the modelled machines),
    memory completion times from {!Ifko_machine.Memsys}, and a one-bit
    branch predictor. *)

type ret_val = Rint of int | Rfp of float

type result = {
  ret : ret_val option;
  cycles : float;  (** 0 when run without timing *)
  instr_count : int;
  uop_count : int;
}

exception Trap of string
(** Raised on semantic violations: unaligned vector access, jump to a
    missing label, instruction budget exceeded.  A trap indicates a
    compiler bug, and the test suite treats it as such. *)

type compiled
(** A function pre-decoded into threaded code.  Compile once per
    candidate, then {!exec} across contexts, sample sizes and reps. *)

val compile : Cfg.func -> compiled
(** Decode [func] (virtual or physical registers both work) into
    closure arrays.  Never traps itself: unresolvable jump targets
    trap at execution, like the walker. *)

val func : compiled -> Cfg.func
(** The function a {!compiled} was decoded from. *)

val digest : compiled -> string
(** Hex digest of the rendered CFG, computed once at {!compile} —
    callers that key caches by compiled code (the sampled timer's
    resume-transient memo) use this instead of re-rendering the
    function per measurement. *)

val fusion : compiled -> int * int
(** [(blocks, instrs)]: how many straight-line bodies were fused into
    superblock closures and how many instructions they cover.  The
    engines make one closure dispatch per body on the (common)
    within-budget path instead of one per instruction; reported by the
    [--profile] modes of the bench driver and [ifko sim]. *)

val exec :
  ?timing:Ifko_machine.Config.t * Ifko_machine.Memsys.t ->
  ?max_instrs:int ->
  ?ret_fsize:Instr.fsize ->
  compiled ->
  Env.t ->
  result
(** Execute pre-decoded code against [env].  Parameters are
    initialized from the environment's bindings by name; the frame
    pointer is set to the environment's stack.  [ret_fsize] selects
    how a floating-point return register is read (default double).
    Default [max_instrs] is 200 million. *)

val run :
  ?timing:Ifko_machine.Config.t * Ifko_machine.Memsys.t ->
  ?max_instrs:int ->
  ?ret_fsize:Instr.fsize ->
  Cfg.func ->
  Env.t ->
  result
(** [compile] + [exec] in one call — the convenient form for
    single-shot execution.  Callers that run the same function more
    than once should compile once and use {!exec}. *)

val run_reference :
  ?timing:Ifko_machine.Config.t * Ifko_machine.Memsys.t ->
  ?max_instrs:int ->
  ?ret_fsize:Instr.fsize ->
  Cfg.func ->
  Env.t ->
  result
(** The original tree-walking interpreter, kept as the reference the
    compiled engine is differentially tested against
    (test/test_exec_compiled.ml). *)
