examples/compiler_shootout.mli:
