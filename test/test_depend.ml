(* Affine dependence & bounds analysis: interval-stride domain
   (Absint), distance/direction vectors (Depend), and the fail-closed
   Legality oracle. *)

open Ifko_codegen
open Ifko_analysis

let compile_src src =
  src |> Ifko_hil.Parser.parse_kernel |> Ifko_hil.Typecheck.check |> Lower.lower

let compile_blas id = Ifko_blas.Hil_sources.compile id

(* ---------- Absint: the interval-with-stride domain ---------- *)

let header_of (compiled : Lower.compiled) =
  match compiled.Lower.loopnest with
  | Some ln -> ln.Loopnest.header
  | None -> Alcotest.fail "kernel has no loop nest"

let array_reg (compiled : Lower.compiled) name =
  match
    List.find_opt (fun a -> a.Lower.a_name = name) compiled.Lower.arrays
  with
  | Some a -> a.Lower.a_reg
  | None -> Alcotest.fail ("no array " ^ name)

(* An ascending pointer must converge to [X + [0,+inf)/stride]: the
   widening join keeps the loop-entry constant as the lower bound and
   widens the upper bound, recording the bump as a stride. *)
let test_widening_ascending () =
  let compiled = compile_blas { Ifko_blas.Defs.routine = Ifko_blas.Defs.Scal; prec = Instr.D } in
  let ai = Absint.analyze compiled.Lower.func in
  let x = array_reg compiled "X" in
  match Absint.at_entry ai (header_of compiled) x with
  | Absint.Val { anchor = Absint.Sym p; lo = Absint.Fin 0; hi = Absint.PosInf; stride = 8 } ->
    Alcotest.(check bool) "anchored at X" true (Reg.equal p x)
  | v -> Alcotest.fail ("unexpected value: " ^ Absint.to_string v)

(* A descending index converges to [N + (-inf, 0]/1]: the upper bound
   (the entry value) survives, the lower bound widens. *)
let test_widening_descending () =
  let src =
    {|KERNEL down(N : int, X : ptr double OUTPUT)
VARS
  x : double;
BEGIN
  OPTLOOP i = N, 0, -1
  LOOP_BODY
    x = X[0];
    X[0] = x;
    X += 1;
  LOOP_END
END
|}
  in
  let compiled = compile_src src in
  let ai = Absint.analyze compiled.Lower.func in
  let x = array_reg compiled "X" in
  (match Absint.at_entry ai (header_of compiled) x with
  | Absint.Val { anchor = Absint.Sym _; lo = Absint.Fin 0; hi = Absint.PosInf; stride = 8 } -> ()
  | v -> Alcotest.fail ("pointer: " ^ Absint.to_string v));
  (* the analysis still proves the pointer affine: direction of the
     HIL index does not matter, only the pointer bumps do *)
  let dep = Depend.analyze compiled in
  Alcotest.(check int) "accesses" 2 (List.length dep.Depend.accesses);
  Alcotest.(check int) "non-affine" 0 (List.length dep.Depend.nonaffine)

(* The join must reach a fixpoint (engine termination) even when two
   pointers chase each other and a register is rebound mid-loop. *)
let test_widening_termination () =
  let src =
    {|KERNEL chase(N : int, X : ptr double, Y : ptr double OUTPUT)
VARS
  a, b : double;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    a = X[0];
    b = X[1];
    Y[0] = a;
    Y[1] = b;
    X += 3;
    Y += 2;
    Y += 1;
  LOOP_END
END
|}
  in
  let compiled = compile_src src in
  let ai = Absint.analyze compiled.Lower.func in
  let y = array_reg compiled "Y" in
  match Absint.at_entry ai (header_of compiled) y with
  | Absint.Val { lo = Absint.Fin 0; hi = Absint.PosInf; stride; _ } ->
    (* two unconditional bumps per iteration, 16 + 8 bytes: at the
       header the offset is always a multiple of 24 *)
    Alcotest.(check int) "stride" 24 stride
  | v -> Alcotest.fail ("unexpected value: " ^ Absint.to_string v)

(* ---------- Depend: golden distance/direction vectors ---------- *)

let pair_sig (p : Depend.pair) =
  let side (a : Depend.access) =
    Printf.sprintf "%s %s"
      (if a.Depend.store then "st" else "ld")
      (match a.Depend.array with Some ap -> ap.Lower.a_name | None -> "?")
  in
  Printf.sprintf "%s -> %s: %s" (side p.Depend.src) (side p.Depend.dst)
    (Depend.relation_to_string p.Depend.relation)

let check_pairs name expected compiled =
  let dep = Depend.analyze compiled in
  Alcotest.(check (list string)) name expected (List.map pair_sig dep.Depend.pairs)

let blas id = { Ifko_blas.Defs.routine = id; prec = Instr.D }

let test_golden_blas () =
  (* swap: both arrays read then written at the same index: a
     loop-independent (distance 0, direction =) pair each; the stores
     never overlap themselves across iterations. *)
  check_pairs "swap"
    [ "ld Y -> st Y: distance 0 (=)";
      "ld X -> st X: distance 0 (=)";
      "st Y -> st Y: independent";
      "st X -> st X: independent" ]
    (compile_blas (blas Ifko_blas.Defs.Swap));
  check_pairs "scal"
    [ "ld X -> st X: distance 0 (=)"; "st X -> st X: independent" ]
    (compile_blas (blas Ifko_blas.Defs.Scal));
  (* copy: X and Y are distinct parameters, so the only conflict
     candidate is the store against itself *)
  check_pairs "copy" [ "st Y -> st Y: independent" ]
    (compile_blas (blas Ifko_blas.Defs.Copy));
  check_pairs "axpy"
    [ "ld Y -> st Y: distance 0 (=)"; "st Y -> st Y: independent" ]
    (compile_blas (blas Ifko_blas.Defs.Axpy));
  (* reductions: loads only, nothing to conflict *)
  check_pairs "dot" [] (compile_blas (blas Ifko_blas.Defs.Dot));
  check_pairs "asum" [] (compile_blas (blas Ifko_blas.Defs.Asum));
  check_pairs "iamax" [] (compile_blas (blas Ifko_blas.Defs.Iamax))

let test_golden_all_independent () =
  List.iter
    (fun id ->
      let dep = Depend.analyze (compile_blas id) in
      Alcotest.(check bool)
        (Ifko_blas.Defs.name id ^ " independent")
        true (Depend.all_independent dep))
    Ifko_blas.Defs.all

(* ---------- adversarial kernels ---------- *)

(* A read one element ahead of a store to the same array: a
   loop-carried flow dependence at distance 1. *)
let test_carried_distance_one () =
  let src =
    {|KERNEL shift(N : int, Y : ptr double OUTPUT)
VARS
  y : double;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    y = Y[1];
    Y[0] = y;
    Y += 1;
  LOOP_END
END
|}
  in
  check_pairs "shift"
    [ "ld Y -> st Y: distance 1 (<)"; "st Y -> st Y: independent" ]
    (compile_src src)

(* Two stores eight bytes apart with a stride of one element: the
   second store this iteration lands where the first store of the next
   iteration writes — an output dependence at distance -1 (>). *)
let test_overlapping_stores () =
  let src =
    {|KERNEL smear(N : int, Y : ptr double OUTPUT)
VARS
  y : double;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    y = Y[0];
    Y[0] = y;
    Y[1] = y;
    Y += 1;
  LOOP_END
END
|}
  in
  let dep = Depend.analyze (compile_src src) in
  Alcotest.(check bool) "not independent" false (Depend.all_independent dep);
  let has_carried =
    List.exists
      (fun (p : Depend.pair) ->
        match p.Depend.relation with
        | Depend.Dependent { distance = Some d; _ } -> d <> 0
        | _ -> false)
      dep.Depend.pairs
  in
  Alcotest.(check bool) "carried store overlap" true has_carried

(* MAYALIAS suppresses the no-alias rule: every pair involving the
   marked array degrades to Unknown — the fail-closed verdict. *)
let test_mayalias_unknown () =
  let src =
    {|KERNEL aliased(N : int, X : ptr double MAYALIAS, Y : ptr double OUTPUT MAYALIAS)
VARS
  x : double;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    Y[0] = x;
    X += 1;
    Y += 1;
  LOOP_END
END
|}
  in
  let dep = Depend.analyze (compile_src src) in
  Alcotest.(check bool) "not independent" false (Depend.all_independent dep);
  Alcotest.(check bool) "an Unknown pair exists" true
    (List.exists
       (fun (p : Depend.pair) ->
         match p.Depend.relation with Depend.Unknown _ -> true | _ -> false)
       dep.Depend.pairs)

(* Without the mark-up the same kernel is provably independent. *)
let test_no_alias_default () =
  let src =
    {|KERNEL unaliased(N : int, X : ptr double, Y : ptr double OUTPUT)
VARS
  x : double;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    Y[0] = x;
    X += 1;
    Y += 1;
  LOOP_END
END
|}
  in
  let dep = Depend.analyze (compile_src src) in
  Alcotest.(check bool) "independent" true (Depend.all_independent dep)

(* ---------- the Legality oracle gating the transforms ---------- *)

let aliased_copy_src =
  {|KERNEL aliased(N : int, X : ptr double MAYALIAS, Y : ptr double OUTPUT MAYALIAS)
VARS
  x : double;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    Y[0] = x;
    X += 1;
    Y += 1;
  LOOP_END
END
|}

let unaliased_copy_src =
  {|KERNEL plain(N : int, X : ptr double, Y : ptr double OUTPUT)
VARS
  x : double;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    Y[0] = x;
    X += 1;
    Y += 1;
  LOOP_END
END
|}

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let check_refused name result =
  match result with
  | Ok () -> Alcotest.fail (name ^ ": transform was not refused")
  | Error (d : Diag.t) -> Alcotest.(check string) (name ^ " code") "IFK012" d.Diag.code

(* SV used to be gated syntactically (Vecinfo shape only); the oracle
   now refuses when independence cannot be proven. *)
let test_sv_refused_on_mayalias () =
  let c = compile_src aliased_copy_src in
  check_refused "SV" (Ifko_transform.Simd.apply c);
  Alcotest.(check bool) "loop stays scalar" false (Ifko_transform.Simd.applied c)

(* WNT bypasses the cache on output stores; an output that may alias a
   read array makes the write-combining reordering unprovable. *)
let test_wnt_refused_on_mayalias () =
  check_refused "WNT" (Ifko_transform.Ntwrite.apply (compile_src aliased_copy_src));
  (* without the mark-up the same kernel converts cleanly *)
  let c = compile_src unaliased_copy_src in
  match Ifko_transform.Ntwrite.apply c with
  | Ok () ->
    let nt =
      List.exists
        (fun (b : Block.t) ->
          List.exists
            (function Instr.Fstnt _ | Instr.Vstnt _ -> true | _ -> false)
            b.Block.instrs)
        c.Lower.func.Cfg.blocks
    in
    Alcotest.(check bool) "non-temporal stores emitted" true nt
  | Error d -> Alcotest.fail (Diag.to_string d)

(* UR must refuse when the loop bookkeeping no longer matches the code
   — unrolling against stale labels would duplicate the wrong blocks. *)
let test_ur_refused_on_stale_loopnest () =
  let c = compile_blas (blas Ifko_blas.Defs.Copy) in
  (match c.Lower.loopnest with
  | Some ln -> ln.Loopnest.header <- "gone_with_the_cleanup"
  | None -> Alcotest.fail "copy has a loop nest");
  match Ifko_transform.Unroll.apply c 4 with
  | Ok () -> Alcotest.fail "UR accepted a stale loop nest"
  | Error d ->
    Alcotest.(check string) "code" "IFK012" d.Diag.code;
    Alcotest.(check bool) "names the staleness" true
      (contains ~sub:"stale" d.Diag.message)

(* UR and AE also refuse when Ptrinfo's syntactic stride contradicts
   the abstract interpretation: here a preheader copy re-anchors X's
   pointer at Y, which IFK014 reports and the oracle rejects. *)
let test_ur_refused_on_contradiction () =
  let c = compile_blas (blas Ifko_blas.Defs.Copy) in
  let x = array_reg c "X" and y = array_reg c "Y" in
  (match c.Lower.loopnest with
  | Some ln ->
    let pre = Cfg.find_block_exn c.Lower.func ln.Loopnest.preheader in
    pre.Block.instrs <- pre.Block.instrs @ [ Instr.Imov (x, y) ]
  | None -> Alcotest.fail "copy has a loop nest");
  Alcotest.(check bool) "contradiction detected" true
    (Depend.stride_contradictions c <> []);
  check_refused "UR" (Ifko_transform.Unroll.apply c 4);
  check_refused "AE" (Ifko_transform.Accexp.apply c 4);
  Alcotest.(check bool) "IFK014 reported" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.code = "IFK014" && d.Diag.severity = Diag.Warning)
       (Lint.check c))

(* The pipeline compiles a refused point without the transform and
   surfaces the rejection through [on_skip]. *)
let test_pipeline_on_skip () =
  let c = compile_src aliased_copy_src in
  let skips = ref [] in
  let params =
    { (Ifko_transform.Params.default ~line_bytes:128 (Report.analyze c)) with
      Ifko_transform.Params.sv = true }
  in
  let out =
    Ifko_transform.Pipeline.apply ~on_skip:(fun d -> skips := d :: !skips)
      ~line_bytes:128 c params
  in
  Alcotest.(check bool) "compiled" true (out.Lower.func.Cfg.blocks <> []);
  match !skips with
  | [ d ] -> Alcotest.(check string) "skip code" "IFK012" d.Diag.code
  | ds -> Alcotest.failf "expected exactly one skip, got %d" (List.length ds)

(* ---------- IFK010: provable out-of-bounds ---------- *)

let test_oob_detected () =
  let src =
    {|KERNEL oob(N : int, Y : ptr double OUTPUT)
VARS
  y : double;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    y = Y[-1];
    Y[0] = y;
    Y += 1;
  LOOP_END
END
|}
  in
  let diags = Lint.check (compile_src src) in
  Alcotest.(check bool) "IFK010 error" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.code = "IFK010" && d.Diag.severity = Diag.Error)
       diags)

(* Every seed kernel and every checked-in fuzz reproducer stays clean
   under the new dependence-based lints. *)
let test_lint_clean_sweep () =
  let new_code (d : Diag.t) =
    List.mem d.Diag.code [ "IFK010"; "IFK011"; "IFK012"; "IFK013"; "IFK014" ]
  in
  let sweep name compiled =
    match List.filter new_code (Lint.check compiled) with
    | [] -> ()
    | ds -> Alcotest.failf "%s: %s" name (Diag.list_to_string ds)
  in
  List.iter (fun id -> sweep (Ifko_blas.Defs.name id) (compile_blas id)) Ifko_blas.Defs.all;
  List.iter
    (fun path ->
      let case = Ifko_fuzz.Corpus.read path in
      sweep path (Ifko_fuzz.Fuzz.compile case.Ifko_fuzz.Corpus.kernel))
    (Ifko_fuzz.Corpus.files ~dir:"corpus")

(* ---------- machine-readable diagnostics ---------- *)

let test_diag_json () =
  let d = Diag.warning ~pass:"UR" ~block:"body_2" ~instr:3 "IFK011" "say \"%s\"" "hi" in
  Alcotest.(check string) "object"
    "{\"severity\":\"warning\",\"code\":\"IFK011\",\"pass\":\"UR\",\"block\":\"body_2\",\"instr\":3,\"message\":\"say \\\"hi\\\"\"}"
    (Diag.to_json d);
  let e = Diag.error "IFK001" "broken" in
  Alcotest.(check string) "list sorts errors first"
    (Printf.sprintf "[%s,%s]" (Diag.to_json e) (Diag.to_json d))
    (Diag.list_to_json [ d; e ])

let suite =
  [ Alcotest.test_case "widening: ascending pointer" `Quick test_widening_ascending;
    Alcotest.test_case "widening: descending index" `Quick test_widening_descending;
    Alcotest.test_case "widening: termination" `Quick test_widening_termination;
    Alcotest.test_case "golden BLAS vectors" `Quick test_golden_blas;
    Alcotest.test_case "BLAS suite all independent" `Quick test_golden_all_independent;
    Alcotest.test_case "carried distance 1" `Quick test_carried_distance_one;
    Alcotest.test_case "overlapping stores" `Quick test_overlapping_stores;
    Alcotest.test_case "MAYALIAS fails closed" `Quick test_mayalias_unknown;
    Alcotest.test_case "no-alias default" `Quick test_no_alias_default;
    Alcotest.test_case "legality: SV refused on MAYALIAS" `Quick test_sv_refused_on_mayalias;
    Alcotest.test_case "legality: WNT refused on MAYALIAS" `Quick test_wnt_refused_on_mayalias;
    Alcotest.test_case "legality: UR refused on stale loop nest" `Quick
      test_ur_refused_on_stale_loopnest;
    Alcotest.test_case "legality: UR/AE refused on stride contradiction" `Quick
      test_ur_refused_on_contradiction;
    Alcotest.test_case "pipeline surfaces skips" `Quick test_pipeline_on_skip;
    Alcotest.test_case "IFK010 flags provable OOB" `Quick test_oob_detected;
    Alcotest.test_case "seed suite + corpus lint-clean (IFK010-IFK014)" `Quick
      test_lint_clean_sweep;
    Alcotest.test_case "diag JSON encoding" `Quick test_diag_json ]
