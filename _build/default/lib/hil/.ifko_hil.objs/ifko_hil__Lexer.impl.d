lib/hil/lexer.ml: Ast List Printf String
