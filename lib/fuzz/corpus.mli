(** Reproducer corpus: every bug the fuzzer ever finds becomes a file,
    and every file becomes a permanent regression test.

    A reproducer is a small text file: provenance comments ([# key:
    value]), one [PARAMS] line holding the canonical parameter-point
    encoding ({!Ifko_transform.Params.canonical}), then the kernel in
    ordinary HIL concrete syntax (re-parsed by
    {!Ifko_hil.Parser.parse_kernel} on replay).  File names are
    content-addressed ([<kernel>-<digest12>.repro]), so re-finding the
    same shrunk bug overwrites rather than duplicates. *)

type case = {
  kernel : Ifko_hil.Ast.kernel;
  params : Ifko_transform.Params.t;
  meta : (string * string) list;
      (** provenance: seed, kernel index, machine, LIL fingerprint,
          first mismatch detail — informational only *)
}

val to_string : case -> string
val of_string : string -> case
(** @raise Failure on a malformed reproducer. *)

val file_name : case -> string
(** Content-addressed basename: [<kernel>-<hex12>.repro]. *)

val write : dir:string -> case -> string
(** Serialize into [dir] (created if missing); returns the path. *)

val read : string -> case

val files : dir:string -> string list
(** Sorted paths of every [*.repro] in [dir] ([] if the directory does
    not exist). *)
