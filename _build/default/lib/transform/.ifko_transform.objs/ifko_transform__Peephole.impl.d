lib/transform/peephole.ml: Array Block Cfg Ifko_analysis Instr List Liveness Reg
