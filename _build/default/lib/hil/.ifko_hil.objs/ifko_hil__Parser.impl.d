lib/hil/parser.ml: Ast Lexer List Printf
