open Ifko_machine

type ret_val = Rint of int | Rfp of float

type result = {
  ret : ret_val option;
  cycles : float;
  instr_count : int;
  uop_count : int;
}

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

(* ---------- architectural state ---------- *)

type state = {
  mutable gpr : int array;
  mutable gcap : int;
  mutable xmm : Bytes.t;  (* 16 bytes per register *)
  mutable xcap : int;
  memm : Bytes.t;
}

(* Physical registers occupy slots 0..7; virtual register [i] lives in
   slot [8+i], so allocated and unallocated code both run. *)
let slot (r : Reg.t) = if r.Reg.phys then r.Reg.id else r.Reg.id + 8

let ensure_gpr st n =
  if n >= st.gcap then begin
    let cap = max (n + 1) (2 * st.gcap) in
    let a = Array.make cap 0 in
    Array.blit st.gpr 0 a 0 st.gcap;
    st.gpr <- a;
    st.gcap <- cap
  end

let ensure_xmm st n =
  if n >= st.xcap then begin
    let cap = max (n + 1) (2 * st.xcap) in
    let b = Bytes.make (cap * 16) '\000' in
    Bytes.blit st.xmm 0 b 0 (st.xcap * 16);
    st.xmm <- b;
    st.xcap <- cap
  end

let gget st r =
  let i = slot r in
  ensure_gpr st i;
  st.gpr.(i)

let gset st r v =
  let i = slot r in
  ensure_gpr st i;
  st.gpr.(i) <- v

let round32 x = Int32.float_of_bits (Int32.bits_of_float x)

let xget64 st r lane =
  let i = slot r in
  ensure_xmm st i;
  Int64.float_of_bits (Bytes.get_int64_le st.xmm ((i * 16) + (lane * 8)))

let xset64 st r lane v =
  let i = slot r in
  ensure_xmm st i;
  Bytes.set_int64_le st.xmm ((i * 16) + (lane * 8)) (Int64.bits_of_float v)

let xget32 st r lane =
  let i = slot r in
  ensure_xmm st i;
  Int32.float_of_bits (Bytes.get_int32_le st.xmm ((i * 16) + (lane * 4)))

let xset32 st r lane v =
  let i = slot r in
  ensure_xmm st i;
  Bytes.set_int32_le st.xmm ((i * 16) + (lane * 4)) (Int32.bits_of_float v)

let xlane st sz r lane =
  match sz with Instr.D -> xget64 st r lane | Instr.S -> xget32 st r lane

let set_xlane st sz r lane v =
  match sz with Instr.D -> xset64 st r lane v | Instr.S -> xset32 st r lane (round32 v)

let xzero st r =
  let i = slot r in
  ensure_xmm st i;
  Bytes.fill st.xmm (i * 16) 16 '\000'

let xcopy st d s =
  let di = slot d and si = slot s in
  ensure_xmm st (max di si);
  Bytes.blit st.xmm (si * 16) st.xmm (di * 16) 16

(* ---------- memory access ---------- *)

let addr_of st (m : Instr.mem) =
  let base = gget st m.Instr.base in
  let idx = match m.Instr.index with Some r -> gget st r * m.Instr.scale | None -> 0 in
  base + idx + m.Instr.disp

let check_bounds st addr bytes =
  if addr < 0 || addr + bytes > Bytes.length st.memm then
    trap "memory access out of range: addr=%d size=%d" addr bytes

(* All 16-byte vector accesses trap in the same order: range first,
   then alignment — so an address that is both out of range and
   unaligned reports the same (range) message on every vector op. *)
let check_vec_access st ~what addr =
  check_bounds st addr 16;
  if addr mod 16 <> 0 then trap "unaligned vector %s at %d" what addr

let load_f st sz addr =
  match sz with
  | Instr.D ->
    check_bounds st addr 8;
    Int64.float_of_bits (Bytes.get_int64_le st.memm addr)
  | Instr.S ->
    check_bounds st addr 4;
    Int32.float_of_bits (Bytes.get_int32_le st.memm addr)

let store_f st sz addr v =
  match sz with
  | Instr.D ->
    check_bounds st addr 8;
    Bytes.set_int64_le st.memm addr (Int64.bits_of_float v)
  | Instr.S ->
    check_bounds st addr 4;
    Bytes.set_int32_le st.memm addr (Int32.bits_of_float (round32 v))

let vload st r addr =
  check_vec_access st ~what:"load" addr;
  let i = slot r in
  ensure_xmm st i;
  Bytes.blit st.memm addr st.xmm (i * 16) 16

let vstore st addr r =
  check_vec_access st ~what:"store" addr;
  let i = slot r in
  ensure_xmm st i;
  Bytes.blit st.xmm (i * 16) st.memm addr 16

(* ---------- arithmetic ---------- *)

let fop_eval op a b =
  match op with
  | Instr.Fadd -> a +. b
  | Instr.Fsub -> a -. b
  | Instr.Fmul -> a *. b
  | Instr.Fdiv -> a /. b
  | Instr.Fmax -> Float.max a b
  | Instr.Fmin -> Float.min a b

let iop_eval op a b =
  match op with
  | Instr.Iadd -> a + b
  | Instr.Isub -> a - b
  | Instr.Imul -> a * b
  | Instr.Iand -> a land b
  | Instr.Ior -> a lor b
  | Instr.Ishl -> a lsl b
  | Instr.Ishr -> a asr b

let cmp_eval_i op a b =
  match op with
  | Instr.Lt -> a < b
  | Instr.Le -> a <= b
  | Instr.Gt -> a > b
  | Instr.Ge -> a >= b
  | Instr.Eq -> a = b
  | Instr.Ne -> a <> b

let cmp_eval_f op a b =
  match op with
  | Instr.Lt -> a < b
  | Instr.Le -> a <= b
  | Instr.Gt -> a > b
  | Instr.Ge -> a >= b
  | Instr.Eq -> a = b
  | Instr.Ne -> a <> b

(* ---------- timing model ---------- *)

(* functional units *)
let u_alu = 0
and u_load = 1
and u_store = 2
and u_fpadd = 3
and u_fpmul = 4
and u_fpdiv = 5
and u_branch = 6

let n_units = 7

(* The two mutable clocks (issue frontier and furthest completion)
   live in a float array rather than mutable float fields: float
   fields of a mixed record box on every write, and these are written
   on every simulated instruction. *)
let k_front = 0
and k_last = 1

type timing = {
  cfg : Config.t;
  ms : Memsys.t;
  msio : float array;  (** [Memsys.io ms]: unboxed load/store time channel *)
  clk : float array;  (** [k_front] = issue frontier; [k_last] = furthest completion *)
  mutable gready : float array;
  mutable gr_cap : int;
  mutable xready : float array;
  mutable xr_cap : int;
  unit_free : float array;
  service : float array;
  issue_cost : float array;  (** [uops /. issue_width], precomputed per uop count *)
  icost1 : float;  (** [issue_cost.(1)]: the single-uop issue cost *)
  fadd_l : float;
  fmul_l : float;
  fdiv_l : float;
  l1_l : float;
  misp : float;
  vuops : int;
  predictor : (string, bool) Hashtbl.t;
  rob : float array;  (** completion times, circular; bounds issue depth *)
  mutable rob_idx : int;
  mutable uops : int;
  mutable tstate : state;
      (** The architectural state the threaded engine is driving.  The
          timed per-instruction closures take only [timing] — a one-
          argument application of an unknown closure is a direct call
          through the code pointer, where a two-argument one goes
          through [caml_apply2]'s arity check on every instruction —
          and reach the state through this field.  [exec] sets it
          before entering the code; the walker never reads it. *)
}

let dummy_state =
  { gpr = [||]; gcap = 0; xmm = Bytes.empty; xcap = 0; memm = Bytes.empty }

let make_timing cfg ms =
  let service = Array.make n_units 1.0 in
  service.(u_alu) <- 0.5;
  service.(u_fpdiv) <- float_of_int cfg.Config.fdiv_lat;
  {
    cfg;
    ms;
    msio = Memsys.io ms;
    clk = Array.make 2 0.0;
    gready = Array.make 32 0.0;
    gr_cap = 32;
    xready = Array.make 32 0.0;
    xr_cap = 32;
    unit_free = Array.make n_units 0.0;
    service;
    issue_cost =
      Array.init 33 (fun u -> float_of_int u /. float_of_int cfg.Config.issue_width);
    icost1 = 1.0 /. float_of_int cfg.Config.issue_width;
    fadd_l = float_of_int cfg.Config.fadd_lat;
    fmul_l = float_of_int cfg.Config.fmul_lat;
    fdiv_l = float_of_int cfg.Config.fdiv_lat;
    l1_l = float_of_int cfg.Config.l1.Config.latency;
    misp = float_of_int cfg.Config.branch_misp_penalty;
    vuops = cfg.Config.vec_uops;
    predictor = Hashtbl.create 16;
    rob = Array.make (max 8 cfg.Config.rob_size) 0.0;
    rob_idx = 0;
    uops = 0;
    tstate = dummy_state;
  }

let ensure_ready tm cls n =
  match cls with
  | Reg.Gpr ->
    if n >= tm.gr_cap then begin
      let cap = max (n + 1) (2 * tm.gr_cap) in
      let a = Array.make cap 0.0 in
      Array.blit tm.gready 0 a 0 tm.gr_cap;
      tm.gready <- a;
      tm.gr_cap <- cap
    end
  | Reg.Xmm ->
    if n >= tm.xr_cap then begin
      let cap = max (n + 1) (2 * tm.xr_cap) in
      let a = Array.make cap 0.0 in
      Array.blit tm.xready 0 a 0 tm.xr_cap;
      tm.xready <- a;
      tm.xr_cap <- cap
    end

let ready tm (r : Reg.t) =
  let i = slot r in
  ensure_ready tm r.Reg.cls i;
  match r.Reg.cls with Reg.Gpr -> tm.gready.(i) | Reg.Xmm -> tm.xready.(i)

(* Timing-clock maximum.  Cycle counts are finite and non-negative
   (never NaN, never -0.0), so this agrees with [Float.max] on every
   value the model produces while staying inlinable — [Float.max]
   crosses a module boundary and boxes both floats per call. *)
let[@inline] fmax (a : float) (b : float) = if a >= b then a else b

(* Record the completion time of the instruction just dispatched (one
   ROB slot per instruction — a close-enough approximation). *)
let[@inline] retire tm completion =
  (* [rob_idx] is always < length by construction (wrap below) *)
  Array.unsafe_set tm.rob tm.rob_idx completion;
  let i = tm.rob_idx + 1 in
  tm.rob_idx <- (if i = Array.length tm.rob then 0 else i);
  if completion > Array.unsafe_get tm.clk k_last then
    Array.unsafe_set tm.clk k_last completion

let set_ready tm (r : Reg.t) v =
  let i = slot r in
  ensure_ready tm r.Reg.cls i;
  (match r.Reg.cls with Reg.Gpr -> tm.gready.(i) <- v | Reg.Xmm -> tm.xready.(i) <- v);
  retire tm v

let srcs_ready tm regs = List.fold_left (fun acc r -> fmax acc (ready tm r)) 0.0 regs

(* Memory traffic through the memory system's unboxed calling
   convention: dispatch time in, completion time out, via a float
   array rather than boxed float argument/return. *)
let[@inline] mload tm addr (start : float) =
  Array.unsafe_set tm.msio Memsys.io_now start;
  Memsys.load_io tm.ms addr;
  Array.unsafe_get tm.msio Memsys.io_ret

let[@inline] mstore tm addr (start : float) =
  Array.unsafe_set tm.msio Memsys.io_now start;
  Memsys.store_io tm.ms addr

let[@inline] mnt_store tm addr ~bytes (start : float) =
  Array.unsafe_set tm.msio Memsys.io_now start;
  Memsys.nt_store_io tm.ms ~bytes addr

let[@inline] mprefetch tm addr ~kind (start : float) =
  Array.unsafe_set tm.msio Memsys.io_now start;
  Memsys.prefetch_io tm.ms ~kind addr

(* Dispatch [uops] micro-ops on [unit]; returns the execution start.
   Issue cannot proceed past a full reorder buffer: the slot about to
   be reused holds the completion time of the µop issued rob_size ago. *)
let[@inline] acquire tm unit ~srcs ~uops =
  tm.uops <- tm.uops + uops;
  let front = fmax tm.clk.(k_front) tm.rob.(tm.rob_idx) in
  let start = fmax (fmax front srcs) tm.unit_free.(unit) in
  tm.unit_free.(unit) <- start +. (tm.service.(unit) *. float_of_int uops);
  tm.clk.(k_front) <-
    front
    +.
    (if uops < 33 then tm.issue_cost.(uops)
     else float_of_int uops /. float_of_int tm.cfg.Config.issue_width);
  start

(* [acquire] specialized at decode time for the overwhelmingly common
   single-uop dispatch: [service *. 1.0] is the identity and the issue
   cost is the precomputed [icost1], so the general uop scaling (a
   float conversion, a multiply, an array lookup and a range test)
   drops out.  Bit-identical to [acquire ~uops:1] on every input. *)
let[@inline] acquire1 tm unit ~srcs =
  tm.uops <- tm.uops + 1;
  let front = fmax (Array.unsafe_get tm.clk k_front) (Array.unsafe_get tm.rob tm.rob_idx) in
  let start = fmax (fmax front srcs) (Array.unsafe_get tm.unit_free unit) in
  Array.unsafe_set tm.unit_free unit (start +. Array.unsafe_get tm.service unit);
  Array.unsafe_set tm.clk k_front (front +. tm.icost1);
  start

let fp_unit op = match op with Instr.Fmul -> u_fpmul | Instr.Fdiv -> u_fpdiv | _ -> u_fpadd

let fp_lat tm op =
  match op with
  | Instr.Fmul -> float_of_int tm.cfg.Config.fmul_lat
  | Instr.Fdiv -> float_of_int tm.cfg.Config.fdiv_lat
  | _ -> float_of_int tm.cfg.Config.fadd_lat

let mem_regs (m : Instr.mem) = Instr.mem_uses m

(* ---------- parameter binding (shared by both engines) ---------- *)

let bind_args st (f : Cfg.func) env =
  gset st Reg.frame_ptr (Env.stack_base env);
  gset st Reg.stack_ptr (Env.stack_base env);
  List.iter
    (fun (name, r) ->
      match Env.binding env name with
      | Env.Int_arg v -> gset st r v
      | Env.Array_arg { addr; _ } -> gset st r addr
      | Env.Fp_arg (sz, v) ->
        xzero st r;
        set_xlane st sz r 0 v
      | exception Not_found -> trap "no binding for parameter %S" name)
    f.Cfg.params

(* ---------- the reference walker ---------- *)

let run_reference ?timing ?(max_instrs = 200_000_000) ?(ret_fsize = Instr.D) (f : Cfg.func)
    (env : Env.t) =
  let st =
    {
      gpr = Array.make 32 0;
      gcap = 32;
      xmm = Bytes.make (32 * 16) '\000';
      xcap = 32;
      memm = Env.mem env;
    }
  in
  let tm = Option.map (fun (cfg, ms) -> make_timing cfg ms) timing in
  bind_args st f env;
  let blocks : (string, Instr.t array * Block.term) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun b ->
      Hashtbl.replace blocks b.Block.label (Array.of_list b.Block.instrs, b.Block.term))
    f.Cfg.blocks;
  let instr_count = ref 0 in
  let lanes = Instr.lanes in
  (* Execute one instruction: semantics always, timing when enabled. *)
  let step i =
    incr instr_count;
    if !instr_count > max_instrs then trap "instruction budget exceeded";
    match i with
    | Instr.Ild (d, m) ->
      let addr = addr_of st m in
      check_bounds st addr 8;
      gset st d (Int64.to_int (Bytes.get_int64_le st.memm addr));
      Option.iter
        (fun tm ->
          let start = acquire tm u_load ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          set_ready tm d (mload tm addr start))
        tm
    | Instr.Ist (m, s) ->
      let addr = addr_of st m in
      check_bounds st addr 8;
      Bytes.set_int64_le st.memm addr (Int64.of_int (gget st s));
      Option.iter
        (fun tm ->
          let start = acquire tm u_store ~srcs:(srcs_ready tm (s :: mem_regs m)) ~uops:1 in
          mstore tm addr start;
          retire tm (start +. 1.0))
        tm
    | Instr.Imov (d, s) ->
      gset st d (gget st s);
      Option.iter
        (fun tm ->
          let start = acquire tm u_alu ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Ildi (d, v) ->
      gset st d v;
      Option.iter
        (fun tm ->
          let start = acquire tm u_alu ~srcs:0.0 ~uops:1 in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Iop (op, d, a, b) ->
      let bv = match b with Instr.Oreg r -> gget st r | Instr.Oimm k -> k in
      gset st d (iop_eval op (gget st a) bv);
      Option.iter
        (fun tm ->
          let srcs =
            Float.max (ready tm a)
              (match b with Instr.Oreg r -> ready tm r | Instr.Oimm _ -> 0.0)
          in
          let lat = match op with Instr.Imul -> 3.0 | _ -> 1.0 in
          let start = acquire tm u_alu ~srcs ~uops:1 in
          set_ready tm d (start +. lat))
        tm
    | Instr.Lea (d, m) ->
      gset st d (addr_of st m);
      Option.iter
        (fun tm ->
          let start = acquire tm u_alu ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Fld (sz, d, m) ->
      let addr = addr_of st m in
      xzero st d;
      set_xlane st sz d 0 (load_f st sz addr);
      Option.iter
        (fun tm ->
          let start = acquire tm u_load ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          set_ready tm d (mload tm addr start))
        tm
    | Instr.Fst (sz, m, s) ->
      let addr = addr_of st m in
      store_f st sz addr (xlane st sz s 0);
      Option.iter
        (fun tm ->
          let start = acquire tm u_store ~srcs:(srcs_ready tm (s :: mem_regs m)) ~uops:1 in
          mstore tm addr start;
          retire tm (start +. 1.0))
        tm
    | Instr.Fstnt (sz, m, s) ->
      let addr = addr_of st m in
      store_f st sz addr (xlane st sz s 0);
      Option.iter
        (fun tm ->
          let start = acquire tm u_store ~srcs:(srcs_ready tm (s :: mem_regs m)) ~uops:1 in
          mnt_store tm addr ~bytes:(Instr.fsize_bytes sz) start;
          retire tm (start +. 1.0))
        tm
    | Instr.Fmov (_, d, s) ->
      xcopy st d s;
      Option.iter
        (fun tm ->
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Fldi (sz, d, c) ->
      xzero st d;
      set_xlane st sz d 0 c;
      Option.iter
        (fun tm ->
          let start = acquire tm u_load ~srcs:0.0 ~uops:1 in
          set_ready tm d (start +. float_of_int tm.cfg.Config.l1.Config.latency))
        tm
    | Instr.Fop (sz, op, d, a, b) ->
      set_xlane st sz d 0 (fop_eval op (xlane st sz a 0) (xlane st sz b 0));
      Option.iter
        (fun tm ->
          let start =
            acquire tm (fp_unit op) ~srcs:(Float.max (ready tm a) (ready tm b)) ~uops:1
          in
          set_ready tm d (start +. fp_lat tm op))
        tm
    | Instr.Fopm (sz, op, d, a, m) ->
      let addr = addr_of st m in
      set_xlane st sz d 0 (fop_eval op (xlane st sz a 0) (load_f st sz addr));
      Option.iter
        (fun tm ->
          let lstart = acquire tm u_load ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          let data = mload tm addr lstart in
          let start =
            acquire tm (fp_unit op) ~srcs:(Float.max data (ready tm a)) ~uops:1
          in
          set_ready tm d (start +. fp_lat tm op))
        tm
    | Instr.Fabs (sz, d, s) ->
      set_xlane st sz d 0 (Float.abs (xlane st sz s 0));
      Option.iter
        (fun tm ->
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Fsqrt (sz, d, s) ->
      set_xlane st sz d 0 (Float.sqrt (xlane st sz s 0));
      Option.iter
        (fun tm ->
          (* square root shares the unpipelined divider *)
          let start = acquire tm u_fpdiv ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. float_of_int tm.cfg.Config.fdiv_lat))
        tm
    | Instr.Fneg (sz, d, s) ->
      set_xlane st sz d 0 (-.xlane st sz s 0);
      Option.iter
        (fun tm ->
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Vld (_, d, m) ->
      let addr = addr_of st m in
      vload st d addr;
      Option.iter
        (fun tm ->
          let start = acquire tm u_load ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          set_ready tm d (mload tm addr start))
        tm
    | Instr.Vst (_, m, s) ->
      let addr = addr_of st m in
      vstore st addr s;
      Option.iter
        (fun tm ->
          let start = acquire tm u_store ~srcs:(srcs_ready tm (s :: mem_regs m)) ~uops:1 in
          mstore tm addr start;
          retire tm (start +. 1.0))
        tm
    | Instr.Vstnt (_, m, s) ->
      let addr = addr_of st m in
      vstore st addr s;
      Option.iter
        (fun tm ->
          let start = acquire tm u_store ~srcs:(srcs_ready tm (s :: mem_regs m)) ~uops:1 in
          mnt_store tm addr ~bytes:16 start;
          retire tm (start +. 1.0))
        tm
    | Instr.Vmov (_, d, s) ->
      xcopy st d s;
      Option.iter
        (fun tm ->
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Vbcast (sz, d, s) ->
      let v = xlane st sz s 0 in
      for lane = 0 to lanes sz - 1 do
        set_xlane st sz d lane v
      done;
      Option.iter
        (fun tm ->
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 2.0))
        tm
    | Instr.Vldi (sz, d, c) ->
      for lane = 0 to lanes sz - 1 do
        set_xlane st sz d lane c
      done;
      Option.iter
        (fun tm ->
          let start = acquire tm u_load ~srcs:0.0 ~uops:1 in
          set_ready tm d (start +. float_of_int tm.cfg.Config.l1.Config.latency))
        tm
    | Instr.Vop (sz, op, d, a, b) ->
      for lane = 0 to lanes sz - 1 do
        set_xlane st sz d lane (fop_eval op (xlane st sz a lane) (xlane st sz b lane))
      done;
      Option.iter
        (fun tm ->
          let uops = tm.cfg.Config.vec_uops in
          let start =
            acquire tm (fp_unit op) ~srcs:(Float.max (ready tm a) (ready tm b)) ~uops
          in
          set_ready tm d (start +. fp_lat tm op))
        tm
    | Instr.Vopm (sz, op, d, a, m) ->
      let addr = addr_of st m in
      check_vec_access st ~what:"operand" addr;
      for lane = 0 to lanes sz - 1 do
        let mv = load_f st sz (addr + (lane * Instr.fsize_bytes sz)) in
        set_xlane st sz d lane (fop_eval op (xlane st sz a lane) mv)
      done;
      Option.iter
        (fun tm ->
          let lstart = acquire tm u_load ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          let data = mload tm addr lstart in
          let uops = tm.cfg.Config.vec_uops in
          let start = acquire tm (fp_unit op) ~srcs:(Float.max data (ready tm a)) ~uops in
          set_ready tm d (start +. fp_lat tm op))
        tm
    | Instr.Vabs (sz, d, s) ->
      for lane = 0 to lanes sz - 1 do
        set_xlane st sz d lane (Float.abs (xlane st sz s lane))
      done;
      Option.iter
        (fun tm ->
          let uops = tm.cfg.Config.vec_uops in
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops in
          set_ready tm d (start +. 1.0))
        tm
    | Instr.Vsqrt (sz, d, s) ->
      for lane = 0 to lanes sz - 1 do
        set_xlane st sz d lane (Float.sqrt (xlane st sz s lane))
      done;
      Option.iter
        (fun tm ->
          let uops = tm.cfg.Config.vec_uops in
          let start = acquire tm u_fpdiv ~srcs:(ready tm s) ~uops in
          set_ready tm d (start +. float_of_int tm.cfg.Config.fdiv_lat))
        tm
    | Instr.Vcmp (sz, cmp, d, a, b) ->
      for lane = 0 to lanes sz - 1 do
        let t = cmp_eval_f cmp (xlane st sz a lane) (xlane st sz b lane) in
        let i = slot d in
        ensure_xmm st i;
        (match sz with
        | Instr.D ->
          Bytes.set_int64_le st.xmm ((i * 16) + (lane * 8))
            (if t then Int64.minus_one else 0L)
        | Instr.S ->
          Bytes.set_int32_le st.xmm ((i * 16) + (lane * 4))
            (if t then Int32.minus_one else 0l))
      done;
      Option.iter
        (fun tm ->
          let uops = tm.cfg.Config.vec_uops in
          let start = acquire tm u_fpadd ~srcs:(Float.max (ready tm a) (ready tm b)) ~uops in
          set_ready tm d (start +. 3.0))
        tm
    | Instr.Vmovmsk (sz, d, s) ->
      let mask = ref 0 in
      let i = slot s in
      ensure_xmm st i;
      for lane = 0 to lanes sz - 1 do
        let top =
          match sz with
          | Instr.D ->
            Int64.to_int
              (Int64.shift_right_logical (Bytes.get_int64_le st.xmm ((i * 16) + (lane * 8))) 63)
          | Instr.S ->
            Int32.to_int
              (Int32.shift_right_logical (Bytes.get_int32_le st.xmm ((i * 16) + (lane * 4))) 31)
        in
        if top land 1 = 1 then mask := !mask lor (1 lsl lane)
      done;
      gset st d !mask;
      Option.iter
        (fun tm ->
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 2.0))
        tm
    | Instr.Vextract (sz, d, s, lane) ->
      let v = xlane st sz s lane in
      xzero st d;
      set_xlane st sz d 0 v;
      Option.iter
        (fun tm ->
          let start = acquire tm u_fpadd ~srcs:(ready tm s) ~uops:1 in
          set_ready tm d (start +. 2.0))
        tm
    | Instr.Vreduce (sz, op, d, s) ->
      let acc = ref (xlane st sz s 0) in
      for lane = 1 to lanes sz - 1 do
        acc := fop_eval op !acc (xlane st sz s lane);
        if sz = Instr.S then acc := round32 !acc
      done;
      let v = !acc in
      xzero st d;
      set_xlane st sz d 0 v;
      Option.iter
        (fun tm ->
          let start = acquire tm (fp_unit op) ~srcs:(ready tm s) ~uops:2 in
          set_ready tm d (start +. (2.0 *. fp_lat tm op)))
        tm
    | Instr.Touch (sz, m) ->
      let addr = addr_of st m in
      check_bounds st addr (Instr.fsize_bytes sz);
      Option.iter
        (fun tm ->
          let start = acquire tm u_load ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          let done_ = mload tm addr start in
          retire tm done_)
        tm
    | Instr.Prefetch (kind, m) ->
      let addr = addr_of st m in
      Option.iter
        (fun tm ->
          let start = acquire tm u_load ~srcs:(srcs_ready tm (mem_regs m)) ~uops:1 in
          if addr >= 0 && addr < Bytes.length st.memm then
            mprefetch tm addr ~kind start;
          retire tm (start +. 1.0))
        tm
    | Instr.Nop -> ()
  in
  (* Terminator execution; returns the next label or the return value. *)
  let terminate label term =
    match term with
    | Block.Jmp l ->
      Option.iter
        (fun tm ->
          let start = acquire tm u_branch ~srcs:0.0 ~uops:1 in
          retire tm (start +. 1.0))
        tm;
      `Goto l
    | Block.Br { cmp; lhs; rhs; ifso; ifnot; dec } ->
      if dec > 0 then gset st lhs (gget st lhs - dec);
      let rv = match rhs with Instr.Oreg r -> gget st r | Instr.Oimm k -> k in
      let taken = cmp_eval_i cmp (gget st lhs) rv in
      Option.iter
        (fun tm ->
          let srcs =
            Float.max (ready tm lhs)
              (match rhs with Instr.Oreg r -> ready tm r | Instr.Oimm _ -> 0.0)
          in
          let start = acquire tm u_branch ~srcs ~uops:1 in
          let resolve = start +. 1.0 in
          if dec > 0 then set_ready tm lhs resolve else retire tm resolve;
          let predicted =
            match Hashtbl.find_opt tm.predictor label with Some p -> p | None -> true
          in
          if predicted <> taken then
            tm.clk.(k_front) <- fmax tm.clk.(k_front) (resolve +. tm.misp);
          Hashtbl.replace tm.predictor label taken)
        tm;
      `Goto (if taken then ifso else ifnot)
    | Block.Fbr { fsize; cmp; lhs; rhs; ifso; ifnot } ->
      let taken = cmp_eval_f cmp (xlane st fsize lhs 0) (xlane st fsize rhs 0) in
      Option.iter
        (fun tm ->
          let srcs = Float.max (ready tm lhs) (ready tm rhs) in
          let start = acquire tm u_branch ~srcs ~uops:2 in
          let resolve = start +. 3.0 in
          retire tm resolve;
          let predicted =
            match Hashtbl.find_opt tm.predictor label with Some p -> p | None -> false
          in
          if predicted <> taken then
            tm.clk.(k_front) <- fmax tm.clk.(k_front) (resolve +. tm.misp);
          Hashtbl.replace tm.predictor label taken)
        tm;
      `Goto (if taken then ifso else ifnot)
    | Block.Ret r -> `Return r
  in
  let rec go label =
    match Hashtbl.find_opt blocks label with
    | None -> trap "jump to unknown block %S" label
    | Some (instrs, term) ->
      Array.iter step instrs;
      (match terminate label term with
      | `Goto l -> go l
      | `Return r -> r)
  in
  let ret_reg = go (Cfg.entry f).Block.label in
  let ret =
    Option.map
      (fun (r : Reg.t) ->
        match r.Reg.cls with
        | Reg.Gpr -> Rint (gget st r)
        | Reg.Xmm -> Rfp (xlane st ret_fsize r 0))
      ret_reg
  in
  let cycles =
    match tm with
    | None -> 0.0
    | Some tm ->
      let finish =
        fmax tm.clk.(k_front)
          (match ret_reg with Some r -> ready tm r | None -> tm.clk.(k_last))
      in
      Memsys.drain_time tm.ms ~now:(fmax finish tm.clk.(k_last))
  in
  {
    ret;
    cycles;
    instr_count = !instr_count;
    uop_count = (match tm with Some tm -> tm.uops | None -> !instr_count);
  }

(* ---------- the threaded-code engine ----------

   [compile] decodes a function once into per-block closure arrays:
   labels become integer block indices, register slots and memory
   operand shapes are resolved at decode time, and every instruction
   is specialized into two closures built from the same decode — pure
   semantics for untimed runs and semantics+timing for timed runs — so
   neither path pays for the other's dispatch.  [exec] then replays
   the closures; it must stay observably bit-identical to
   [run_reference]: same values, same trap messages raised at the same
   points, same [cycles]/[instr_count]/[uop_count]. *)

type cblock = {
  c_pure : (state -> unit) array;
      (** per-instruction closures: the budget-constrained slow path *)
  c_timed : (timing -> unit) array;
  c_pure_all : state -> unit;  (** the whole straight-line body, fused *)
  c_timed_all : timing -> unit;
  c_len : int;
  c_pterm : state -> int;
  c_tterm : state -> timing -> int array -> int;
}

type compiled = {
  c_func : Cfg.func;
  c_digest : string;  (* of the rendered CFG; computed once at compile *)
  c_blocks : cblock array;
  c_entry : int;
  c_rets : Reg.t option array;  (* terminator code [-1 - k] returns [c_rets.(k)] *)
  c_ngpr : int;
  c_nxmm : int;
}

let func c = c.c_func
let digest c = c.c_digest

let fusion c =
  let instrs = Array.fold_left (fun acc b -> acc + b.c_len) 0 c.c_blocks in
  (Array.length c.c_blocks, instrs)

(* Decode-time operand specialization.  Register files are pre-sized
   by [compile], so closures index the flat arrays directly with
   decode-resolved slots.

   Everything below is written so that the decoded closures contain
   only inlined primitives: a composed closure that returns a [float]
   boxes it on every call, so lane reads, lane writes, arithmetic, and
   readiness lookups are expanded *inside* each instruction's closure
   body, where the native compiler keeps the intermediates unboxed. *)

(* Unchecked byte accessors.  Every decode-closure access is either
   into the xmm file (pre-sized by [compile] to the function's full
   register extent before any closure runs) or into simulated memory
   at an offset an explicit [check_bounds]/[check_vec_access] has just
   proved in range — so the stdlib accessors' own bounds checks are
   statically redundant and dropped.  The byte-swap on big-endian
   hosts mirrors [Bytes.get_int64_le]'s definition exactly. *)
external b64_get : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external b64_set : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external b32_get : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external b32_set : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"
external swap64 : int64 -> int64 = "%bswap_int64"
external swap32 : int32 -> int32 = "%bswap_int32"

let[@inline] uget64 b o = if Sys.big_endian then swap64 (b64_get b o) else b64_get b o

let[@inline] uset64 b o v =
  if Sys.big_endian then b64_set b o (swap64 v) else b64_set b o v

let[@inline] uget32 b o = if Sys.big_endian then swap32 (b32_get b o) else b32_get b o

let[@inline] uset32 b o v =
  if Sys.big_endian then b32_set b o (swap32 v) else b32_set b o v

(* 16-byte register moves as two 64-bit primitive accesses:
   [Bytes.blit]/[Bytes.fill] are C calls, far slower at this width.
   Register slots are 16-aligned, so source and destination are either
   identical or disjoint; both words are read before either write, so
   the copy matches blit semantics in every case. *)
let[@inline] copy16 dst dof src sof =
  let w0 = uget64 src sof in
  let w1 = uget64 src (sof + 8) in
  uset64 dst dof w0;
  uset64 dst (dof + 8) w1

let[@inline] zero16 b o =
  uset64 b o 0L;
  uset64 b (o + 8) 0L

let[@inline] getd b o = Int64.float_of_bits (uget64 b o)
let[@inline] setd b o v = uset64 b o (Int64.bits_of_float v)
let[@inline] gets b o = Int32.float_of_bits (uget32 b o)

(* Writing the 32-bit image of [v] IS the round-to-single of
   [set_xlane]: [bits_of_float (round32 v)] = [bits_of_float v]. *)
let[@inline] sets b o v = uset32 b o (Int32.bits_of_float v)

let xoff (r : Reg.t) = slot r * 16

(* Effective address with decode-resolved slots.  When there is no
   index register the decoder reuses the base slot with scale 0, so a
   single closure shape serves both operand forms. *)
let maddr (m : Instr.mem) =
  let b = slot m.Instr.base in
  match m.Instr.index with
  | None -> (b, b, 0, m.Instr.disp)
  | Some r -> (b, slot r, m.Instr.scale, m.Instr.disp)

let[@inline] ea g b i s d = Array.unsafe_get g b + (Array.unsafe_get g i * s) + d

(* Readiness (class, slot) pairs of a mem operand; with no index the
   base is duplicated — [fmax x x = x], so the combined readiness is
   bit-identical to the walker's fold over [mem_uses]. *)
let mready (m : Instr.mem) =
  let bc = m.Instr.base.Reg.cls and b = slot m.Instr.base in
  match m.Instr.index with
  | None -> (bc, b, bc, b)
  | Some r -> (bc, b, r.Reg.cls, slot r)

(* Monomorphic arithmetic/comparison on decode-captured operators.
   The annotations matter: they turn the generic structural compare of
   the walker's [cmp_eval_*] into immediate int/float compares (the
   two agree on every int and on NaN for all six operators), and the
   match on an immediate constructor costs a branch, not a call. *)

let[@inline] fop_x op (a : float) (b : float) =
  match op with
  | Instr.Fadd -> a +. b
  | Instr.Fsub -> a -. b
  | Instr.Fmul -> a *. b
  | Instr.Fdiv -> a /. b
  | Instr.Fmax -> Float.max a b
  | Instr.Fmin -> Float.min a b

let[@inline] iop_x op (a : int) (b : int) =
  match op with
  | Instr.Iadd -> a + b
  | Instr.Isub -> a - b
  | Instr.Imul -> a * b
  | Instr.Iand -> a land b
  | Instr.Ior -> a lor b
  | Instr.Ishl -> a lsl b
  | Instr.Ishr -> a asr b

let[@inline] cmpi_x op (a : int) (b : int) =
  match op with
  | Instr.Lt -> a < b
  | Instr.Le -> a <= b
  | Instr.Gt -> a > b
  | Instr.Ge -> a >= b
  | Instr.Eq -> a = b
  | Instr.Ne -> a <> b

let[@inline] cmpf_x op (a : float) (b : float) =
  match op with
  | Instr.Lt -> a < b
  | Instr.Le -> a <= b
  | Instr.Gt -> a > b
  | Instr.Ge -> a >= b
  | Instr.Eq -> a = b
  | Instr.Ne -> a <> b

let[@inline] flat tm op =
  match op with Instr.Fmul -> tm.fmul_l | Instr.Fdiv -> tm.fdiv_l | _ -> tm.fadd_l

(* Timing readiness with decode-resolved (class, slot): the ready
   arrays are pre-grown to the function's register extent by [exec],
   so indexing is unchecked; [wr] inlines [set_ready]. *)

let[@inline] rd tm (cls : Reg.cls) i =
  match cls with
  | Reg.Gpr -> Array.unsafe_get tm.gready i
  | Reg.Xmm -> Array.unsafe_get tm.xready i

let[@inline] wr tm (cls : Reg.cls) i v =
  (match cls with
  | Reg.Gpr -> Array.unsafe_set tm.gready i v
  | Reg.Xmm -> Array.unsafe_set tm.xready i v);
  retire tm v

(* Decode one instruction into its (pure, timed) closure pair.  Timed
   closures for memory ops compute the address exactly once and
   interleave semantics with timing the way the walker does — the
   semantic destination may alias the address base (e.g. Ild d,[d]).

   The float size is matched at decode time, so each closure body is a
   straight line of inlined primitives over the flat register files:
   no lane-accessor closures, no boxed floats in flight.  Vector lanes
   are unrolled (D = 2 lanes, S = 4) in the walker's lane order, which
   preserves aliasing behaviour when the destination overlaps a
   source. *)
(* Unchecked register-file access for decode closures: [compile]
   pre-sizes the gpr file to the function's full register extent, so
   every decode-resolved slot is in range by construction. *)
let[@inline] gu st i = Array.unsafe_get st.gpr i
let[@inline] gput st i v = Array.unsafe_set st.gpr i v

let decode_instr (ins : Instr.t) : (state -> unit) * (timing -> unit) =
  match ins with
  | Instr.Ild (d, m) ->
    let mb, mx, msc, mdp = maddr m in
    let c1, s1, c2, s2 = mready m in
    let di = slot d and dc = d.Reg.cls in
    ( (fun st ->
        let addr = ea st.gpr mb mx msc mdp in
        check_bounds st addr 8;
        gput st di @@ Int64.to_int (uget64 st.memm addr)),
      fun tm -> let st = tm.tstate in
        let addr = ea st.gpr mb mx msc mdp in
        check_bounds st addr 8;
        gput st di @@ Int64.to_int (uget64 st.memm addr);
        let start =
          acquire1 tm u_load ~srcs:(fmax (rd tm c1 s1) (rd tm c2 s2))
        in
        wr tm dc di (mload tm addr start) )
  | Instr.Ist (m, s) ->
    let mb, mx, msc, mdp = maddr m in
    let c1, s1, c2, s2 = mready m in
    let si = slot s and sc = s.Reg.cls in
    ( (fun st ->
        let addr = ea st.gpr mb mx msc mdp in
        check_bounds st addr 8;
        uset64 st.memm addr (Int64.of_int (gu st si))),
      fun tm -> let st = tm.tstate in
        let addr = ea st.gpr mb mx msc mdp in
        check_bounds st addr 8;
        uset64 st.memm addr (Int64.of_int (gu st si));
        let start =
          acquire1 tm u_store
            ~srcs:(fmax (rd tm sc si) (fmax (rd tm c1 s1) (rd tm c2 s2)))
        in
        mstore tm addr start;
        retire tm (start +. 1.0) )
  | Instr.Imov (d, s) ->
    let di = slot d and dc = d.Reg.cls and si = slot s and sc = s.Reg.cls in
    ( (fun st -> gput st di @@ (gu st si)),
      fun tm -> let st = tm.tstate in
        gput st di @@ (gu st si);
        let start = acquire1 tm u_alu ~srcs:(rd tm sc si) in
        wr tm dc di (start +. 1.0) )
  | Instr.Ildi (d, v) ->
    let di = slot d and dc = d.Reg.cls in
    ( (fun st -> gput st di @@ v),
      fun tm -> let st = tm.tstate in
        gput st di @@ v;
        let start = acquire1 tm u_alu ~srcs:0.0 in
        wr tm dc di (start +. 1.0) )
  | Instr.Iop (op, d, a, b) ->
    let di = slot d and dc = d.Reg.cls and ai = slot a and ac = a.Reg.cls in
    let lat = match op with Instr.Imul -> 3.0 | _ -> 1.0 in
    (match b with
    | Instr.Oreg r ->
      let bi = slot r and bc = r.Reg.cls in
      ( (fun st -> gput st di @@ iop_x op (gu st ai) (gu st bi)),
        fun tm -> let st = tm.tstate in
          gput st di @@ iop_x op (gu st ai) (gu st bi);
          let start =
            acquire1 tm u_alu ~srcs:(fmax (rd tm ac ai) (rd tm bc bi))
          in
          wr tm dc di (start +. lat) )
    | Instr.Oimm k ->
      ( (fun st -> gput st di @@ iop_x op (gu st ai) k),
        fun tm -> let st = tm.tstate in
          gput st di @@ iop_x op (gu st ai) k;
          let start = acquire1 tm u_alu ~srcs:(rd tm ac ai) in
          wr tm dc di (start +. lat) ))
  | Instr.Lea (d, m) ->
    let mb, mx, msc, mdp = maddr m in
    let c1, s1, c2, s2 = mready m in
    let di = slot d and dc = d.Reg.cls in
    ( (fun st -> gput st di @@ ea st.gpr mb mx msc mdp),
      fun tm -> let st = tm.tstate in
        gput st di @@ ea st.gpr mb mx msc mdp;
        let start =
          acquire1 tm u_alu ~srcs:(fmax (rd tm c1 s1) (rd tm c2 s2))
        in
        wr tm dc di (start +. 1.0) )
  | Instr.Fld (sz, d, m) ->
    let mb, mx, msc, mdp = maddr m in
    let c1, s1, c2, s2 = mready m in
    let xo = xoff d and di = slot d and dc = d.Reg.cls in
    (match sz with
    | Instr.D ->
      ( (fun st ->
          let addr = ea st.gpr mb mx msc mdp in
          zero16 st.xmm xo;
          check_bounds st addr 8;
          setd st.xmm xo (getd st.memm addr)),
        fun tm -> let st = tm.tstate in
          let addr = ea st.gpr mb mx msc mdp in
          zero16 st.xmm xo;
          check_bounds st addr 8;
          setd st.xmm xo (getd st.memm addr);
          let start =
            acquire1 tm u_load ~srcs:(fmax (rd tm c1 s1) (rd tm c2 s2))
          in
          wr tm dc di (mload tm addr start) )
    | Instr.S ->
      ( (fun st ->
          let addr = ea st.gpr mb mx msc mdp in
          zero16 st.xmm xo;
          check_bounds st addr 4;
          sets st.xmm xo (gets st.memm addr)),
        fun tm -> let st = tm.tstate in
          let addr = ea st.gpr mb mx msc mdp in
          zero16 st.xmm xo;
          check_bounds st addr 4;
          sets st.xmm xo (gets st.memm addr);
          let start =
            acquire1 tm u_load ~srcs:(fmax (rd tm c1 s1) (rd tm c2 s2))
          in
          wr tm dc di (mload tm addr start) ))
  | Instr.Fst (sz, m, s) ->
    let mb, mx, msc, mdp = maddr m in
    let c1, s1, c2, s2 = mready m in
    let so = xoff s and si = slot s and sc = s.Reg.cls in
    (match sz with
    | Instr.D ->
      ( (fun st ->
          let addr = ea st.gpr mb mx msc mdp in
          check_bounds st addr 8;
          setd st.memm addr (getd st.xmm so)),
        fun tm -> let st = tm.tstate in
          let addr = ea st.gpr mb mx msc mdp in
          check_bounds st addr 8;
          setd st.memm addr (getd st.xmm so);
          let start =
            acquire1 tm u_store
              ~srcs:(fmax (rd tm sc si) (fmax (rd tm c1 s1) (rd tm c2 s2)))
          in
          mstore tm addr start;
          retire tm (start +. 1.0) )
    | Instr.S ->
      ( (fun st ->
          let addr = ea st.gpr mb mx msc mdp in
          check_bounds st addr 4;
          sets st.memm addr (gets st.xmm so)),
        fun tm -> let st = tm.tstate in
          let addr = ea st.gpr mb mx msc mdp in
          check_bounds st addr 4;
          sets st.memm addr (gets st.xmm so);
          let start =
            acquire1 tm u_store
              ~srcs:(fmax (rd tm sc si) (fmax (rd tm c1 s1) (rd tm c2 s2)))
          in
          mstore tm addr start;
          retire tm (start +. 1.0) ))
  | Instr.Fstnt (sz, m, s) ->
    let mb, mx, msc, mdp = maddr m in
    let c1, s1, c2, s2 = mready m in
    let so = xoff s and si = slot s and sc = s.Reg.cls in
    let bytes = Instr.fsize_bytes sz in
    (match sz with
    | Instr.D ->
      ( (fun st ->
          let addr = ea st.gpr mb mx msc mdp in
          check_bounds st addr 8;
          setd st.memm addr (getd st.xmm so)),
        fun tm -> let st = tm.tstate in
          let addr = ea st.gpr mb mx msc mdp in
          check_bounds st addr 8;
          setd st.memm addr (getd st.xmm so);
          let start =
            acquire1 tm u_store
              ~srcs:(fmax (rd tm sc si) (fmax (rd tm c1 s1) (rd tm c2 s2)))
          in
          mnt_store tm addr ~bytes start;
          retire tm (start +. 1.0) )
    | Instr.S ->
      ( (fun st ->
          let addr = ea st.gpr mb mx msc mdp in
          check_bounds st addr 4;
          sets st.memm addr (gets st.xmm so)),
        fun tm -> let st = tm.tstate in
          let addr = ea st.gpr mb mx msc mdp in
          check_bounds st addr 4;
          sets st.memm addr (gets st.xmm so);
          let start =
            acquire1 tm u_store
              ~srcs:(fmax (rd tm sc si) (fmax (rd tm c1 s1) (rd tm c2 s2)))
          in
          mnt_store tm addr ~bytes start;
          retire tm (start +. 1.0) ))
  | Instr.Fmov (_, d, s) | Instr.Vmov (_, d, s) ->
    let doff = xoff d and soff = xoff s in
    let di = slot d and dc = d.Reg.cls and si = slot s and sc = s.Reg.cls in
    ( (fun st -> copy16 st.xmm doff st.xmm soff),
      fun tm -> let st = tm.tstate in
        copy16 st.xmm doff st.xmm soff;
        let start = acquire1 tm u_fpadd ~srcs:(rd tm sc si) in
        wr tm dc di (start +. 1.0) )
  | Instr.Fldi (sz, d, c) ->
    let xo = xoff d and di = slot d and dc = d.Reg.cls in
    let sem =
      (* the lane image of the constant is computed at decode time *)
      match sz with
      | Instr.D ->
        let bits = Int64.bits_of_float c in
        fun st ->
          zero16 st.xmm xo;
          uset64 st.xmm xo bits
      | Instr.S ->
        let bits = Int32.bits_of_float c in
        fun st ->
          zero16 st.xmm xo;
          uset32 st.xmm xo bits
    in
    ( sem,
      fun tm -> let st = tm.tstate in
        sem st;
        let start = acquire1 tm u_load ~srcs:0.0 in
        wr tm dc di (start +. tm.l1_l) )
  | Instr.Fop (sz, op, d, a, b) ->
    let ao = xoff a and bo = xoff b and dxo = xoff d in
    let ai = slot a and ac = a.Reg.cls in
    let bi = slot b and bc = b.Reg.cls in
    let di = slot d and dc = d.Reg.cls in
    let unit_ = fp_unit op in
    (match sz with
    | Instr.D ->
      ( (fun st -> setd st.xmm dxo (fop_x op (getd st.xmm ao) (getd st.xmm bo))),
        fun tm -> let st = tm.tstate in
          setd st.xmm dxo (fop_x op (getd st.xmm ao) (getd st.xmm bo));
          let start =
            acquire1 tm unit_ ~srcs:(fmax (rd tm ac ai) (rd tm bc bi))
          in
          wr tm dc di (start +. flat tm op) )
    | Instr.S ->
      ( (fun st -> sets st.xmm dxo (fop_x op (gets st.xmm ao) (gets st.xmm bo))),
        fun tm -> let st = tm.tstate in
          sets st.xmm dxo (fop_x op (gets st.xmm ao) (gets st.xmm bo));
          let start =
            acquire1 tm unit_ ~srcs:(fmax (rd tm ac ai) (rd tm bc bi))
          in
          wr tm dc di (start +. flat tm op) ))
  | Instr.Fopm (sz, op, d, a, m) ->
    let mb, mx, msc, mdp = maddr m in
    let c1, s1, c2, s2 = mready m in
    let ao = xoff a and dxo = xoff d in
    let ai = slot a and ac = a.Reg.cls in
    let di = slot d and dc = d.Reg.cls in
    let unit_ = fp_unit op in
    (match sz with
    | Instr.D ->
      ( (fun st ->
          let addr = ea st.gpr mb mx msc mdp in
          check_bounds st addr 8;
          setd st.xmm dxo (fop_x op (getd st.xmm ao) (getd st.memm addr))),
        fun tm -> let st = tm.tstate in
          let addr = ea st.gpr mb mx msc mdp in
          check_bounds st addr 8;
          setd st.xmm dxo (fop_x op (getd st.xmm ao) (getd st.memm addr));
          let lstart =
            acquire1 tm u_load ~srcs:(fmax (rd tm c1 s1) (rd tm c2 s2))
          in
          let data = mload tm addr lstart in
          let start = acquire1 tm unit_ ~srcs:(fmax data (rd tm ac ai)) in
          wr tm dc di (start +. flat tm op) )
    | Instr.S ->
      ( (fun st ->
          let addr = ea st.gpr mb mx msc mdp in
          check_bounds st addr 4;
          sets st.xmm dxo (fop_x op (gets st.xmm ao) (gets st.memm addr))),
        fun tm -> let st = tm.tstate in
          let addr = ea st.gpr mb mx msc mdp in
          check_bounds st addr 4;
          sets st.xmm dxo (fop_x op (gets st.xmm ao) (gets st.memm addr));
          let lstart =
            acquire1 tm u_load ~srcs:(fmax (rd tm c1 s1) (rd tm c2 s2))
          in
          let data = mload tm addr lstart in
          let start = acquire1 tm unit_ ~srcs:(fmax data (rd tm ac ai)) in
          wr tm dc di (start +. flat tm op) ))
  | Instr.Fabs (sz, d, s) ->
    let so = xoff s and dxo = xoff d in
    let si = slot s and sc = s.Reg.cls and di = slot d and dc = d.Reg.cls in
    (match sz with
    | Instr.D ->
      ( (fun st -> setd st.xmm dxo (Float.abs (getd st.xmm so))),
        fun tm -> let st = tm.tstate in
          setd st.xmm dxo (Float.abs (getd st.xmm so));
          let start = acquire1 tm u_fpadd ~srcs:(rd tm sc si) in
          wr tm dc di (start +. 1.0) )
    | Instr.S ->
      ( (fun st -> sets st.xmm dxo (Float.abs (gets st.xmm so))),
        fun tm -> let st = tm.tstate in
          sets st.xmm dxo (Float.abs (gets st.xmm so));
          let start = acquire1 tm u_fpadd ~srcs:(rd tm sc si) in
          wr tm dc di (start +. 1.0) ))
  | Instr.Fsqrt (sz, d, s) ->
    let so = xoff s and dxo = xoff d in
    let si = slot s and sc = s.Reg.cls and di = slot d and dc = d.Reg.cls in
    (match sz with
    | Instr.D ->
      ( (fun st -> setd st.xmm dxo (Float.sqrt (getd st.xmm so))),
        fun tm -> let st = tm.tstate in
          setd st.xmm dxo (Float.sqrt (getd st.xmm so));
          (* square root shares the unpipelined divider *)
          let start = acquire1 tm u_fpdiv ~srcs:(rd tm sc si) in
          wr tm dc di (start +. tm.fdiv_l) )
    | Instr.S ->
      ( (fun st -> sets st.xmm dxo (Float.sqrt (gets st.xmm so))),
        fun tm -> let st = tm.tstate in
          sets st.xmm dxo (Float.sqrt (gets st.xmm so));
          let start = acquire1 tm u_fpdiv ~srcs:(rd tm sc si) in
          wr tm dc di (start +. tm.fdiv_l) ))
  | Instr.Fneg (sz, d, s) ->
    let so = xoff s and dxo = xoff d in
    let si = slot s and sc = s.Reg.cls and di = slot d and dc = d.Reg.cls in
    (match sz with
    | Instr.D ->
      ( (fun st -> setd st.xmm dxo (-.getd st.xmm so)),
        fun tm -> let st = tm.tstate in
          setd st.xmm dxo (-.getd st.xmm so);
          let start = acquire1 tm u_fpadd ~srcs:(rd tm sc si) in
          wr tm dc di (start +. 1.0) )
    | Instr.S ->
      ( (fun st -> sets st.xmm dxo (-.gets st.xmm so)),
        fun tm -> let st = tm.tstate in
          sets st.xmm dxo (-.gets st.xmm so);
          let start = acquire1 tm u_fpadd ~srcs:(rd tm sc si) in
          wr tm dc di (start +. 1.0) ))
  | Instr.Vld (_, d, m) ->
    let mb, mx, msc, mdp = maddr m in
    let c1, s1, c2, s2 = mready m in
    let doff = xoff d and di = slot d and dc = d.Reg.cls in
    ( (fun st ->
        let addr = ea st.gpr mb mx msc mdp in
        check_vec_access st ~what:"load" addr;
        copy16 st.xmm doff st.memm addr),
      fun tm -> let st = tm.tstate in
        let addr = ea st.gpr mb mx msc mdp in
        check_vec_access st ~what:"load" addr;
        copy16 st.xmm doff st.memm addr;
        let start =
          acquire1 tm u_load ~srcs:(fmax (rd tm c1 s1) (rd tm c2 s2))
        in
        wr tm dc di (mload tm addr start) )
  | Instr.Vst (_, m, s) ->
    let mb, mx, msc, mdp = maddr m in
    let c1, s1, c2, s2 = mready m in
    let soff = xoff s and si = slot s and sc = s.Reg.cls in
    ( (fun st ->
        let addr = ea st.gpr mb mx msc mdp in
        check_vec_access st ~what:"store" addr;
        copy16 st.memm addr st.xmm soff),
      fun tm -> let st = tm.tstate in
        let addr = ea st.gpr mb mx msc mdp in
        check_vec_access st ~what:"store" addr;
        copy16 st.memm addr st.xmm soff;
        let start =
          acquire1 tm u_store
            ~srcs:(fmax (rd tm sc si) (fmax (rd tm c1 s1) (rd tm c2 s2)))
        in
        mstore tm addr start;
        retire tm (start +. 1.0) )
  | Instr.Vstnt (_, m, s) ->
    let mb, mx, msc, mdp = maddr m in
    let c1, s1, c2, s2 = mready m in
    let soff = xoff s and si = slot s and sc = s.Reg.cls in
    ( (fun st ->
        let addr = ea st.gpr mb mx msc mdp in
        check_vec_access st ~what:"store" addr;
        copy16 st.memm addr st.xmm soff),
      fun tm -> let st = tm.tstate in
        let addr = ea st.gpr mb mx msc mdp in
        check_vec_access st ~what:"store" addr;
        copy16 st.memm addr st.xmm soff;
        let start =
          acquire1 tm u_store
            ~srcs:(fmax (rd tm sc si) (fmax (rd tm c1 s1) (rd tm c2 s2)))
        in
        mnt_store tm addr ~bytes:16 start;
        retire tm (start +. 1.0) )
  | Instr.Vbcast (sz, d, s) ->
    let so = xoff s and dxo = xoff d in
    let si = slot s and sc = s.Reg.cls and di = slot d and dc = d.Reg.cls in
    let sem =
      match sz with
      | Instr.D ->
        fun st ->
          let bits = uget64 st.xmm so in
          uset64 st.xmm dxo bits;
          uset64 st.xmm (dxo + 8) bits
      | Instr.S ->
        fun st ->
          let bits = uget32 st.xmm so in
          uset32 st.xmm dxo bits;
          uset32 st.xmm (dxo + 4) bits;
          uset32 st.xmm (dxo + 8) bits;
          uset32 st.xmm (dxo + 12) bits
    in
    ( sem,
      fun tm -> let st = tm.tstate in
        sem st;
        let start = acquire1 tm u_fpadd ~srcs:(rd tm sc si) in
        wr tm dc di (start +. 2.0) )
  | Instr.Vldi (sz, d, c) ->
    let dxo = xoff d and di = slot d and dc = d.Reg.cls in
    let sem =
      match sz with
      | Instr.D ->
        let bits = Int64.bits_of_float c in
        fun st ->
          uset64 st.xmm dxo bits;
          uset64 st.xmm (dxo + 8) bits
      | Instr.S ->
        let bits = Int32.bits_of_float c in
        fun st ->
          uset32 st.xmm dxo bits;
          uset32 st.xmm (dxo + 4) bits;
          uset32 st.xmm (dxo + 8) bits;
          uset32 st.xmm (dxo + 12) bits
    in
    ( sem,
      fun tm -> let st = tm.tstate in
        sem st;
        let start = acquire1 tm u_load ~srcs:0.0 in
        wr tm dc di (start +. tm.l1_l) )
  | Instr.Vop (sz, op, d, a, b) ->
    let ao = xoff a and bo = xoff b and dxo = xoff d in
    let ai = slot a and ac = a.Reg.cls in
    let bi = slot b and bc = b.Reg.cls in
    let di = slot d and dc = d.Reg.cls in
    let unit_ = fp_unit op in
    let sem =
      match sz with
      | Instr.D ->
        fun st ->
          let x = st.xmm in
          setd x dxo (fop_x op (getd x ao) (getd x bo));
          setd x (dxo + 8) (fop_x op (getd x (ao + 8)) (getd x (bo + 8)))
      | Instr.S ->
        fun st ->
          let x = st.xmm in
          sets x dxo (fop_x op (gets x ao) (gets x bo));
          sets x (dxo + 4) (fop_x op (gets x (ao + 4)) (gets x (bo + 4)));
          sets x (dxo + 8) (fop_x op (gets x (ao + 8)) (gets x (bo + 8)));
          sets x (dxo + 12) (fop_x op (gets x (ao + 12)) (gets x (bo + 12)))
    in
    ( sem,
      fun tm -> let st = tm.tstate in
        sem st;
        let start =
          acquire tm unit_ ~srcs:(fmax (rd tm ac ai) (rd tm bc bi)) ~uops:tm.vuops
        in
        wr tm dc di (start +. flat tm op) )
  | Instr.Vopm (sz, op, d, a, m) ->
    let mb, mx, msc, mdp = maddr m in
    let c1, s1, c2, s2 = mready m in
    let ao = xoff a and dxo = xoff d in
    let ai = slot a and ac = a.Reg.cls in
    let di = slot d and dc = d.Reg.cls in
    let unit_ = fp_unit op in
    (* [check_vec_access] proves the whole 16-byte operand in range, so
       the walker's per-lane bounds checks are statically redundant and
       dropped here. *)
    let sem =
      match sz with
      | Instr.D ->
        fun st addr ->
          check_vec_access st ~what:"operand" addr;
          let x = st.xmm and mm = st.memm in
          setd x dxo (fop_x op (getd x ao) (getd mm addr));
          setd x (dxo + 8) (fop_x op (getd x (ao + 8)) (getd mm (addr + 8)))
      | Instr.S ->
        fun st addr ->
          check_vec_access st ~what:"operand" addr;
          let x = st.xmm and mm = st.memm in
          sets x dxo (fop_x op (gets x ao) (gets mm addr));
          sets x (dxo + 4) (fop_x op (gets x (ao + 4)) (gets mm (addr + 4)));
          sets x (dxo + 8) (fop_x op (gets x (ao + 8)) (gets mm (addr + 8)));
          sets x (dxo + 12) (fop_x op (gets x (ao + 12)) (gets mm (addr + 12)))
    in
    ( (fun st -> sem st (ea st.gpr mb mx msc mdp)),
      fun tm -> let st = tm.tstate in
        let addr = ea st.gpr mb mx msc mdp in
        sem st addr;
        let lstart =
          acquire1 tm u_load ~srcs:(fmax (rd tm c1 s1) (rd tm c2 s2))
        in
        let data = mload tm addr lstart in
        let start =
          acquire tm unit_ ~srcs:(fmax data (rd tm ac ai)) ~uops:tm.vuops
        in
        wr tm dc di (start +. flat tm op) )
  | Instr.Vabs (sz, d, s) ->
    let so = xoff s and dxo = xoff d in
    let si = slot s and sc = s.Reg.cls and di = slot d and dc = d.Reg.cls in
    let sem =
      match sz with
      | Instr.D ->
        fun st ->
          let x = st.xmm in
          setd x dxo (Float.abs (getd x so));
          setd x (dxo + 8) (Float.abs (getd x (so + 8)))
      | Instr.S ->
        fun st ->
          let x = st.xmm in
          sets x dxo (Float.abs (gets x so));
          sets x (dxo + 4) (Float.abs (gets x (so + 4)));
          sets x (dxo + 8) (Float.abs (gets x (so + 8)));
          sets x (dxo + 12) (Float.abs (gets x (so + 12)))
    in
    ( sem,
      fun tm -> let st = tm.tstate in
        sem st;
        let start = acquire tm u_fpadd ~srcs:(rd tm sc si) ~uops:tm.vuops in
        wr tm dc di (start +. 1.0) )
  | Instr.Vsqrt (sz, d, s) ->
    let so = xoff s and dxo = xoff d in
    let si = slot s and sc = s.Reg.cls and di = slot d and dc = d.Reg.cls in
    let sem =
      match sz with
      | Instr.D ->
        fun st ->
          let x = st.xmm in
          setd x dxo (Float.sqrt (getd x so));
          setd x (dxo + 8) (Float.sqrt (getd x (so + 8)))
      | Instr.S ->
        fun st ->
          let x = st.xmm in
          sets x dxo (Float.sqrt (gets x so));
          sets x (dxo + 4) (Float.sqrt (gets x (so + 4)));
          sets x (dxo + 8) (Float.sqrt (gets x (so + 8)));
          sets x (dxo + 12) (Float.sqrt (gets x (so + 12)))
    in
    ( sem,
      fun tm -> let st = tm.tstate in
        sem st;
        let start = acquire tm u_fpdiv ~srcs:(rd tm sc si) ~uops:tm.vuops in
        wr tm dc di (start +. tm.fdiv_l) )
  | Instr.Vcmp (sz, cmp, d, a, b) ->
    let ao = xoff a and bo = xoff b and doff = xoff d in
    let ai = slot a and ac = a.Reg.cls in
    let bi = slot b and bc = b.Reg.cls in
    let di = slot d and dc = d.Reg.cls in
    let sem =
      match sz with
      | Instr.D ->
        fun st ->
          let x = st.xmm in
          let t0 = cmpf_x cmp (getd x ao) (getd x bo) in
          uset64 x doff (if t0 then Int64.minus_one else 0L);
          let t1 = cmpf_x cmp (getd x (ao + 8)) (getd x (bo + 8)) in
          uset64 x (doff + 8) (if t1 then Int64.minus_one else 0L)
      | Instr.S ->
        fun st ->
          let x = st.xmm in
          for lane = 0 to 3 do
            let o = lane * 4 in
            let t = cmpf_x cmp (gets x (ao + o)) (gets x (bo + o)) in
            uset32 x (doff + o) (if t then Int32.minus_one else 0l)
          done
    in
    ( sem,
      fun tm -> let st = tm.tstate in
        sem st;
        let start =
          acquire tm u_fpadd ~srcs:(fmax (rd tm ac ai) (rd tm bc bi)) ~uops:tm.vuops
        in
        wr tm dc di (start +. 3.0) )
  | Instr.Vmovmsk (sz, d, s) ->
    let di = slot d and dc = d.Reg.cls in
    let soff = xoff s and si = slot s and sc = s.Reg.cls in
    let n = Instr.lanes sz in
    let sem =
      match sz with
      | Instr.D ->
        fun st ->
          let mask = ref 0 in
          for lane = 0 to n - 1 do
            let top =
              Int64.to_int
                (Int64.shift_right_logical
                   (uget64 st.xmm (soff + (lane * 8)))
                   63)
            in
            if top land 1 = 1 then mask := !mask lor (1 lsl lane)
          done;
          gput st di @@ !mask
      | Instr.S ->
        fun st ->
          let mask = ref 0 in
          for lane = 0 to n - 1 do
            let top =
              Int32.to_int
                (Int32.shift_right_logical
                   (uget32 st.xmm (soff + (lane * 4)))
                   31)
            in
            if top land 1 = 1 then mask := !mask lor (1 lsl lane)
          done;
          gput st di @@ !mask
    in
    ( sem,
      fun tm -> let st = tm.tstate in
        sem st;
        let start = acquire1 tm u_fpadd ~srcs:(rd tm sc si) in
        wr tm dc di (start +. 2.0) )
  | Instr.Vextract (sz, d, s, lane) ->
    (* pure bit move: float_of_bits/bits_of_float round-trips are the
       identity, so the lane is copied without decoding it *)
    let doff = xoff d and di = slot d and dc = d.Reg.cls in
    let si = slot s and sc = s.Reg.cls in
    let sem =
      match sz with
      | Instr.D ->
        let so = xoff s + (lane * 8) in
        fun st ->
          let bits = uget64 st.xmm so in
          zero16 st.xmm doff;
          uset64 st.xmm doff bits
      | Instr.S ->
        let so = xoff s + (lane * 4) in
        fun st ->
          let bits = uget32 st.xmm so in
          zero16 st.xmm doff;
          uset32 st.xmm doff bits
    in
    ( sem,
      fun tm -> let st = tm.tstate in
        sem st;
        let start = acquire1 tm u_fpadd ~srcs:(rd tm sc si) in
        wr tm dc di (start +. 2.0) )
  | Instr.Vreduce (sz, op, d, s) ->
    let so = xoff s and doff = xoff d in
    let si = slot s and sc = s.Reg.cls and di = slot d and dc = d.Reg.cls in
    let unit_ = fp_unit op in
    let sem =
      match sz with
      | Instr.D ->
        fun st ->
          let x = st.xmm in
          let acc = fop_x op (getd x so) (getd x (so + 8)) in
          zero16 x doff;
          setd x doff acc
      | Instr.S ->
        (* single precision rounds after every fold step, as the
           walker does *)
        fun st ->
          let x = st.xmm in
          let acc = round32 (fop_x op (gets x so) (gets x (so + 4))) in
          let acc = round32 (fop_x op acc (gets x (so + 8))) in
          let acc = round32 (fop_x op acc (gets x (so + 12))) in
          zero16 x doff;
          sets x doff acc
    in
    ( sem,
      fun tm -> let st = tm.tstate in
        sem st;
        let start = acquire tm unit_ ~srcs:(rd tm sc si) ~uops:2 in
        wr tm dc di (start +. (2.0 *. flat tm op)) )
  | Instr.Touch (sz, m) ->
    let mb, mx, msc, mdp = maddr m in
    let c1, s1, c2, s2 = mready m in
    let bytes = Instr.fsize_bytes sz in
    ( (fun st -> check_bounds st (ea st.gpr mb mx msc mdp) bytes),
      fun tm -> let st = tm.tstate in
        let addr = ea st.gpr mb mx msc mdp in
        check_bounds st addr bytes;
        let start =
          acquire1 tm u_load ~srcs:(fmax (rd tm c1 s1) (rd tm c2 s2))
        in
        retire tm (mload tm addr start) )
  | Instr.Prefetch (kind, m) ->
    let mb, mx, msc, mdp = maddr m in
    let c1, s1, c2, s2 = mready m in
    ( (fun _ -> ()),
      fun tm -> let st = tm.tstate in
        let addr = ea st.gpr mb mx msc mdp in
        let start =
          acquire1 tm u_load ~srcs:(fmax (rd tm c1 s1) (rd tm c2 s2))
        in
        if addr >= 0 && addr < Bytes.length st.memm then
          mprefetch tm addr ~kind start;
        retire tm (start +. 1.0) )
  | Instr.Nop -> ((fun _ -> ()), fun _ -> ())

(* Jump targets resolve to block indices at decode time; an unresolved
   label compiles to a closure that traps only when executed, so a
   never-taken branch to a missing block still runs (as in the
   walker). *)
let goto_fn lmap l : state -> int =
  match Hashtbl.find_opt lmap l with
  | Some i -> fun _ -> i
  | None -> fun _ -> trap "jump to unknown block %S" l

(* Terminator closures return the next block index, or [-1 - k] for
   the [k]-th Ret site.  The branch predictor is an int array indexed
   by block ([-1] = never seen); same one-bit policy as the walker's
   label-keyed table. *)
let decode_term ~bi ~lmap ~ret (t : Block.term) :
    (state -> int) * (state -> timing -> int array -> int) =
  match t with
  | Block.Jmp l ->
    let goto = goto_fn lmap l in
    ( goto,
      fun st tm _pred ->
        let start = acquire1 tm u_branch ~srcs:0.0 in
        retire tm (start +. 1.0);
        goto st )
  | Block.Br { cmp; lhs; rhs; ifso; ifnot; dec } ->
    let li = slot lhs and lc = lhs.Reg.cls in
    let g_so = goto_fn lmap ifso and g_not = goto_fn lmap ifnot in
    (match rhs with
    | Instr.Oreg r ->
      let ri = slot r and rc = r.Reg.cls in
      ( (fun st ->
          if dec > 0 then gput st li @@ (gu st li) - dec;
          if cmpi_x cmp (gu st li) (gu st ri) then g_so st else g_not st),
        fun st tm pred ->
          if dec > 0 then gput st li @@ (gu st li) - dec;
          let taken = cmpi_x cmp (gu st li) (gu st ri) in
          let start =
            acquire1 tm u_branch ~srcs:(fmax (rd tm lc li) (rd tm rc ri))
          in
          let resolve = start +. 1.0 in
          if dec > 0 then wr tm lc li resolve else retire tm resolve;
          let predicted = match pred.(bi) with -1 -> true | p -> p = 1 in
          if predicted <> taken then
            tm.clk.(k_front) <- fmax tm.clk.(k_front) (resolve +. tm.misp);
          pred.(bi) <- Bool.to_int taken;
          if taken then g_so st else g_not st )
    | Instr.Oimm k ->
      ( (fun st ->
          if dec > 0 then gput st li @@ (gu st li) - dec;
          if cmpi_x cmp (gu st li) k then g_so st else g_not st),
        fun st tm pred ->
          if dec > 0 then gput st li @@ (gu st li) - dec;
          let taken = cmpi_x cmp (gu st li) k in
          let start = acquire1 tm u_branch ~srcs:(rd tm lc li) in
          let resolve = start +. 1.0 in
          if dec > 0 then wr tm lc li resolve else retire tm resolve;
          let predicted = match pred.(bi) with -1 -> true | p -> p = 1 in
          if predicted <> taken then
            tm.clk.(k_front) <- fmax tm.clk.(k_front) (resolve +. tm.misp);
          pred.(bi) <- Bool.to_int taken;
          if taken then g_so st else g_not st ))
  | Block.Fbr { fsize; cmp; lhs; rhs; ifso; ifnot } ->
    let lo = xoff lhs and ro = xoff rhs in
    let li = slot lhs and lc = lhs.Reg.cls in
    let ri = slot rhs and rc = rhs.Reg.cls in
    let g_so = goto_fn lmap ifso and g_not = goto_fn lmap ifnot in
    let test =
      match fsize with
      | Instr.D -> fun st -> cmpf_x cmp (getd st.xmm lo) (getd st.xmm ro)
      | Instr.S -> fun st -> cmpf_x cmp (gets st.xmm lo) (gets st.xmm ro)
    in
    ( (fun st -> if test st then g_so st else g_not st),
      fun st tm pred ->
        let taken = test st in
        let start =
          acquire tm u_branch ~srcs:(fmax (rd tm lc li) (rd tm rc ri)) ~uops:2
        in
        let resolve = start +. 3.0 in
        retire tm resolve;
        let predicted = match pred.(bi) with -1 -> false | p -> p = 1 in
        if predicted <> taken then
          tm.clk.(k_front) <- fmax tm.clk.(k_front) (resolve +. tm.misp);
        pred.(bi) <- Bool.to_int taken;
        if taken then g_so st else g_not st )
  | Block.Ret r ->
    let code = -1 - ret r in
    ((fun _ -> code), fun _ _ _ -> code)

(* ------------------------------------------------------------------ *)
(* Superblock fusion.

   The timed engine's hot loop used to make one indirect call per
   instruction: [for i = 0 to n-1 do code.(i) st tm done].  Fusing a
   block's straight-line run into a single closure turns that into one
   dispatch per block — the calls between consecutive instructions
   become direct (known) calls inside the fused closure's body.

   The combinators below just sequence their arguments, so the fused
   closure executes the exact same closures in the exact same order as
   the per-instruction loop; a trap raised by instruction [i]
   propagates after instructions [0..i-1] ran, same as before.  Lists
   longer than eight are split into at most eight near-equal chunks
   and fused recursively (arity-8 trees), so dispatch overhead is
   O(n/8 + log n) calls per block instead of n.

   The per-instruction arrays are kept alongside: the budget slow path
   needs to count and trap at instruction granularity. *)

let[@inline] pseq2 a b = fun st -> a st; b st
let[@inline] pseq3 a b c = fun st -> a st; b st; c st
let[@inline] pseq4 a b c d = fun st -> a st; b st; c st; d st
let[@inline] pseq5 a b c d e = fun st -> a st; b st; c st; d st; e st
let[@inline] pseq6 a b c d e f = fun st -> a st; b st; c st; d st; e st; f st
let[@inline] pseq7 a b c d e f g =
 fun st ->
  a st;
  b st;
  c st;
  d st;
  e st;
  f st;
  g st

let[@inline] pseq8 a b c d e f g h =
 fun st ->
  a st;
  b st;
  c st;
  d st;
  e st;
  f st;
  g st;
  h st

let[@inline] tseq2 a b = fun tm -> a tm; b tm
let[@inline] tseq3 a b c = fun tm -> a tm; b tm; c tm
let[@inline] tseq4 a b c d = fun tm -> a tm; b tm; c tm; d tm
let[@inline] tseq5 a b c d e = fun tm -> a tm; b tm; c tm; d tm; e tm
let[@inline] tseq6 a b c d e f = fun tm -> a tm; b tm; c tm; d tm; e tm; f tm

let[@inline] tseq7 a b c d e f g =
 fun tm ->
  a tm;
  b tm;
  c tm;
  d tm;
  e tm;
  f tm;
  g tm

let[@inline] tseq8 a b c d e f g h =
 fun tm ->
  a tm;
  b tm;
  c tm;
  d tm;
  e tm;
  f tm;
  g tm;
  h tm

let rec fuse_pure (code : (state -> unit) array) lo hi =
  let n = hi - lo in
  if n <= 8 then
    match n with
    | 0 -> fun _ -> ()
    | 1 -> Array.unsafe_get code lo
    | 2 -> pseq2 code.(lo) code.(lo + 1)
    | 3 -> pseq3 code.(lo) code.(lo + 1) code.(lo + 2)
    | 4 -> pseq4 code.(lo) code.(lo + 1) code.(lo + 2) code.(lo + 3)
    | 5 -> pseq5 code.(lo) code.(lo + 1) code.(lo + 2) code.(lo + 3) code.(lo + 4)
    | 6 ->
      pseq6 code.(lo)
        code.(lo + 1)
        code.(lo + 2)
        code.(lo + 3)
        code.(lo + 4)
        code.(lo + 5)
    | 7 ->
      pseq7 code.(lo)
        code.(lo + 1)
        code.(lo + 2)
        code.(lo + 3)
        code.(lo + 4)
        code.(lo + 5)
        code.(lo + 6)
    | _ ->
      pseq8 code.(lo)
        code.(lo + 1)
        code.(lo + 2)
        code.(lo + 3)
        code.(lo + 4)
        code.(lo + 5)
        code.(lo + 6)
        code.(lo + 7)
  else begin
    (* at most eight chunks of ceil(n/8) each, fused bottom-up *)
    let k = (n + 7) / 8 in
    let parts =
      Array.init ((n + k - 1) / k) (fun i ->
          fuse_pure code (lo + (i * k)) (min hi (lo + ((i + 1) * k))))
    in
    fuse_pure parts 0 (Array.length parts)
  end

let rec fuse_timed (code : (timing -> unit) array) lo hi =
  let n = hi - lo in
  if n <= 8 then
    match n with
    | 0 -> fun _ -> ()
    | 1 -> Array.unsafe_get code lo
    | 2 -> tseq2 code.(lo) code.(lo + 1)
    | 3 -> tseq3 code.(lo) code.(lo + 1) code.(lo + 2)
    | 4 -> tseq4 code.(lo) code.(lo + 1) code.(lo + 2) code.(lo + 3)
    | 5 -> tseq5 code.(lo) code.(lo + 1) code.(lo + 2) code.(lo + 3) code.(lo + 4)
    | 6 ->
      tseq6 code.(lo)
        code.(lo + 1)
        code.(lo + 2)
        code.(lo + 3)
        code.(lo + 4)
        code.(lo + 5)
    | 7 ->
      tseq7 code.(lo)
        code.(lo + 1)
        code.(lo + 2)
        code.(lo + 3)
        code.(lo + 4)
        code.(lo + 5)
        code.(lo + 6)
    | _ ->
      tseq8 code.(lo)
        code.(lo + 1)
        code.(lo + 2)
        code.(lo + 3)
        code.(lo + 4)
        code.(lo + 5)
        code.(lo + 6)
        code.(lo + 7)
  else begin
    let k = (n + 7) / 8 in
    let parts =
      Array.init ((n + k - 1) / k) (fun i ->
          fuse_timed code (lo + (i * k)) (min hi (lo + ((i + 1) * k))))
    in
    fuse_timed parts 0 (Array.length parts)
  end

let compile (f : Cfg.func) : compiled =
  let blocks = Array.of_list f.Cfg.blocks in
  (* Hashtbl.replace in block order: with duplicate labels the last
     block wins, exactly as in the walker's block table. *)
  let lmap = Hashtbl.create (max 16 (2 * Array.length blocks)) in
  Array.iteri (fun i b -> Hashtbl.replace lmap b.Block.label i) blocks;
  (* Pre-size the flat register files: at least the 8 physical slots
     (frame/stack pointer live there), plus every slot the function
     mentions anywhere. *)
  let ngpr = ref 8 and nxmm = ref 8 in
  let see (r : Reg.t) =
    let s = slot r + 1 in
    match r.Reg.cls with
    | Reg.Gpr -> if s > !ngpr then ngpr := s
    | Reg.Xmm -> if s > !nxmm then nxmm := s
  in
  Reg.Set.iter see (Cfg.all_regs f);
  let rets = ref [] and nrets = ref 0 in
  let ret r =
    let k = !nrets in
    incr nrets;
    rets := r :: !rets;
    k
  in
  let cblocks =
    Array.mapi
      (fun bi b ->
        let decoded = List.map decode_instr b.Block.instrs in
        let pterm, tterm = decode_term ~bi ~lmap ~ret b.Block.term in
        let c_pure = Array.of_list (List.map fst decoded) in
        let c_timed = Array.of_list (List.map snd decoded) in
        let n = Array.length c_pure in
        {
          c_pure;
          c_timed;
          c_pure_all = fuse_pure c_pure 0 n;
          c_timed_all = fuse_timed c_timed 0 n;
          c_len = n;
          c_pterm = pterm;
          c_tterm = tterm;
        })
      blocks
  in
  let centry =
    match Hashtbl.find_opt lmap (Cfg.entry f).Block.label with
    | Some i -> i
    | None -> assert false
  in
  {
    c_func = f;
    c_digest = Digest.to_hex (Digest.string (Cfg.to_string f));
    c_blocks = cblocks;
    c_entry = centry;
    c_rets = Array.of_list (List.rev !rets);
    c_ngpr = !ngpr;
    c_nxmm = !nxmm;
  }

let exec ?timing ?(max_instrs = 200_000_000) ?(ret_fsize = Instr.D) (c : compiled)
    (env : Env.t) =
  let st =
    {
      gpr = Array.make c.c_ngpr 0;
      gcap = c.c_ngpr;
      xmm = Bytes.make (c.c_nxmm * 16) '\000';
      xcap = c.c_nxmm;
      memm = Env.mem env;
    }
  in
  bind_args st c.c_func env;
  let blocks = c.c_blocks in
  let icount = ref 0 in
  let finish code tm =
    let ret_reg = c.c_rets.(-1 - code) in
    let ret =
      Option.map
        (fun (r : Reg.t) ->
          match r.Reg.cls with
          | Reg.Gpr -> Rint (gget st r)
          | Reg.Xmm -> Rfp (xlane st ret_fsize r 0))
        ret_reg
    in
    match tm with
    | None -> { ret; cycles = 0.0; instr_count = !icount; uop_count = !icount }
    | Some tm ->
      let fin =
        fmax tm.clk.(k_front)
          (match ret_reg with Some r -> ready tm r | None -> tm.clk.(k_last))
      in
      let cycles = Memsys.drain_time tm.ms ~now:(fmax fin tm.clk.(k_last)) in
      { ret; cycles; instr_count = !icount; uop_count = tm.uops }
  in
  (* Block-level budget: when a whole block fits in the remaining
     budget it is charged up front and the body runs with no
     per-instruction check.  [n <= max_instrs - !icount] is
     overflow-safe ([!icount] never exceeds [max_instrs]), and the
     slow path traps at exactly the same instruction as the walker. *)
  match timing with
  | None ->
    let rec go bi =
      let b = Array.unsafe_get blocks bi in
      let n = b.c_len in
      if n <= max_instrs - !icount then begin
        icount := !icount + n;
        b.c_pure_all st
      end
      else begin
        let code = b.c_pure in
        for i = 0 to n - 1 do
          incr icount;
          if !icount > max_instrs then trap "instruction budget exceeded";
          (Array.unsafe_get code i) st
        done
      end;
      let nxt = b.c_pterm st in
      if nxt >= 0 then go nxt else nxt
    in
    finish (go c.c_entry) None
  | Some (cfg, ms) ->
    let tm = make_timing cfg ms in
    tm.tstate <- st;
    ensure_ready tm Reg.Gpr (c.c_ngpr - 1);
    ensure_ready tm Reg.Xmm (c.c_nxmm - 1);
    let pred = Array.make (Array.length blocks) (-1) in
    let rec go bi =
      let b = Array.unsafe_get blocks bi in
      let n = b.c_len in
      if n <= max_instrs - !icount then begin
        icount := !icount + n;
        b.c_timed_all tm
      end
      else begin
        let code = b.c_timed in
        for i = 0 to n - 1 do
          incr icount;
          if !icount > max_instrs then trap "instruction budget exceeded";
          (Array.unsafe_get code i) tm
        done
      end;
      let nxt = b.c_tterm st tm pred in
      if nxt >= 0 then go nxt else nxt
    in
    finish (go c.c_entry) (Some tm)

let run ?timing ?max_instrs ?ret_fsize f env =
  exec ?timing ?max_instrs ?ret_fsize (compile f) env
