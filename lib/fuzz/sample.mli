(** Random parameter-point sampling over {!Ifko_transform.Params.t}.

    Points are drawn over the full fundamental-transform space the
    search may legally visit (SV/UR/LC/AE/PF/WNT plus the block-fetch
    and CISC extensions), deliberately including invalid-adjacent
    boundary values — unroll 0, accumulator expansion 1, prefetch
    distance 0/1/huge, SV forced on non-vectorizable kernels — which
    the pipeline must either compile correctly or cleanly reject
    (anything else is a bug the oracle reports). *)

val point :
  Ifko_util.Rng.t ->
  line_bytes:int ->
  report:Ifko_analysis.Report.t ->
  Ifko_transform.Params.t
