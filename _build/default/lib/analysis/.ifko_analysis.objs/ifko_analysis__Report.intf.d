lib/analysis/report.mli: Accuminfo Ifko_codegen Instr Ptrinfo
