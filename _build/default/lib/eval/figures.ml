open Ifko_blas
open Ifko_util

let table1 () =
  let t = Table.create ~title:"Table 1. Level 1 BLAS summary" [ "NAME"; "Operation"; "FLOPs" ] in
  List.iter
    (fun r ->
      Table.add_row t
        [ Defs.routine_base r;
          Defs.summary r;
          (match Defs.flops_per_n r with 1.0 -> "N" | _ -> "2N");
        ])
    Defs.routines;
  Table.render t

let table2 () =
  let t =
    Table.create ~title:"Table 2. Simulated platforms and modelled compilers"
      [ "PLATFORM"; "GHz"; "L1"; "L2"; "mem lat"; "bus B/cy"; "notes" ]
  in
  List.iter
    (fun (cfg : Ifko_machine.Config.t) ->
      Table.add_row t
        [ cfg.Ifko_machine.Config.name;
          Printf.sprintf "%.1f" cfg.Ifko_machine.Config.ghz;
          Printf.sprintf "%dK/%dB" (cfg.Ifko_machine.Config.l1.Ifko_machine.Config.size / 1024)
            cfg.Ifko_machine.Config.l1.Ifko_machine.Config.line;
          Printf.sprintf "%dK/%dB" (cfg.Ifko_machine.Config.l2.Ifko_machine.Config.size / 1024)
            cfg.Ifko_machine.Config.l2.Ifko_machine.Config.line;
          string_of_int cfg.Ifko_machine.Config.mem_latency;
          Printf.sprintf "%.1f" cfg.Ifko_machine.Config.bus_bytes_per_cycle;
          (if cfg.Ifko_machine.Config.vec_uops > 1 then "splits 16B vectors"
           else "full-width SSE");
        ])
    Ifko_machine.Config.all;
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Table.render t);
  Buffer.add_string buf "Compiler models: ";
  Buffer.add_string buf
    (String.concat "; "
       (List.map
          (fun (m : Ifko_baselines.Compiler_model.t) ->
            Printf.sprintf "%s (sv=%b ur=%d pf=%s wnt-prof=%b)"
              m.Ifko_baselines.Compiler_model.name m.Ifko_baselines.Compiler_model.sv
              m.Ifko_baselines.Compiler_model.unroll
              (match m.Ifko_baselines.Compiler_model.prefetch with
              | None -> "no"
              | Some (_, d) -> string_of_int d)
              m.Ifko_baselines.Compiler_model.wnt_when_streaming)
          Ifko_baselines.Compiler_model.all));
  Buffer.add_char buf '\n';
  Buffer.contents buf

let relative_figure ~title (study : Eval.study) =
  let t =
    Table.create ~title
      ([ "kernel" ] @ List.map Eval.method_name Eval.methods @ [ "best MFLOPS" ])
  in
  List.iter
    (fun (r : Eval.kernel_result) ->
      Table.add_row t
        ([ r.Eval.display_name ]
        @ List.map (fun m -> Table.cell_pct (Eval.percent r m)) Eval.methods
        @ [ Table.cell_f1 (Eval.best_mflops r) ]))
    study.Eval.results;
  Table.add_sep t;
  Table.add_row t
    ([ "AVG" ]
    @ List.map (fun m -> Table.cell_pct (Eval.average_percent study m)) Eval.methods
    @ [ "" ]);
  Table.add_row t
    ([ "VAVG" ]
    @ List.map (fun m -> Table.cell_pct (Eval.vector_average_percent study m)) Eval.methods
    @ [ "" ]);
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Table.render t);
  (* echo the paper's bar-chart form for the ifko column *)
  Buffer.add_string buf "ifko relative performance:\n";
  List.iter
    (fun (r : Eval.kernel_result) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-8s |%s| %5.1f%%\n" r.Eval.display_name
           (Table.bar ~width:40 ~frac:(Eval.percent r Eval.Ifko /. 100.0))
           (Eval.percent r Eval.Ifko)))
    study.Eval.results;
  Buffer.contents buf

let fig5a (p4e : Eval.study) (opteron : Eval.study) =
  let t =
    Table.create
      ~title:"Figure 5(a). ifko performance in MFLOPS, N=80000, out of cache"
      [ "kernel"; p4e.Eval.cfg.Ifko_machine.Config.name;
        opteron.Eval.cfg.Ifko_machine.Config.name ]
  in
  List.iter2
    (fun (a : Eval.kernel_result) (b : Eval.kernel_result) ->
      Table.add_row t
        [ Defs.name a.Eval.kernel;
          Table.cell_f1 (List.assoc Eval.Ifko a.Eval.mflops);
          Table.cell_f1 (List.assoc Eval.Ifko b.Eval.mflops);
        ])
    p4e.Eval.results opteron.Eval.results;
  Table.render t

let fig5b ~(oc : Eval.study) ~(l2 : Eval.study) =
  let t =
    Table.create
      ~title:
        "Figure 5(b). P4E in-L2-cache speedup over out-of-cache (ifko-tuned; higher = more bus-bound)"
      [ "kernel"; "out-of-cache"; "in-L2"; "speedup" ]
  in
  List.iter2
    (fun (a : Eval.kernel_result) (b : Eval.kernel_result) ->
      let va = List.assoc Eval.Ifko a.Eval.mflops
      and vb = List.assoc Eval.Ifko b.Eval.mflops in
      Table.add_row t
        [ Defs.name a.Eval.kernel; Table.cell_f1 va; Table.cell_f1 vb;
          Printf.sprintf "%.2fx" (vb /. Float.max 1e-9 va);
        ])
    oc.Eval.results l2.Eval.results;
  Table.render t

let params_cells (p : Ifko_transform.Params.t) =
  let yn b = if b then "Y" else "N" in
  let pf name =
    match List.assoc_opt name p.Ifko_transform.Params.prefetch with
    | None -> "n/a:0"
    | Some s -> Ifko_transform.Params.pf_to_string s
  in
  [ Printf.sprintf "%s:%s" (yn p.Ifko_transform.Params.sv) (yn p.Ifko_transform.Params.wnt);
    pf "X"; pf "Y";
    Printf.sprintf "%d:%d" p.Ifko_transform.Params.unroll p.Ifko_transform.Params.ae;
  ]

let table3 (studies : (string * Eval.study) list) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Table 3. Transformation parameters selected by the empirical search\n";
  List.iter
    (fun (label, study) ->
      let t =
        Table.create ~title:label [ "BLAS"; "SV:WNT"; "PF X INS:DST"; "PF Y INS:DST"; "UR:AE" ]
      in
      List.iter
        (fun (r : Eval.kernel_result) ->
          Table.add_row t
            (Defs.name r.Eval.kernel
            :: params_cells r.Eval.tuned.Ifko_search.Driver.best_params))
        study.Eval.results;
      Buffer.add_string buf (Table.render t))
    studies;
  Buffer.contents buf

(* Figure 7's transformation axes, mapped from the search's recorded
   dimensions (the restricted 2-D refinements fold into their primary
   axis). *)
let fig7_axes = [ "WNT"; "PF DST"; "PF INS"; "UR"; "AE" ]

let fig7_decomposition (tuned : Ifko_search.Driver.tuned) =
  let get d = Option.value ~default:1.0 (List.assoc_opt d tuned.Ifko_search.Driver.contributions) in
  [ ("WNT", get "WNT");
    ("PF DST", get "PF DST" *. get "PF2");
    ("PF INS", get "PF INS");
    ("UR", get "UR");
    ("AE", get "AE" *. get "UR*AE");
  ]

let fig7 (studies : (string * Eval.study) list) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Figure 7. Speedup of ifko over FKO attributable to tuning each parameter\n";
  let totals = Hashtbl.create 8 in
  let count = ref 0 in
  List.iter
    (fun (label, study) ->
      let t =
        Table.create ~title:label ([ "kernel" ] @ fig7_axes @ [ "total ifko/FKO" ])
      in
      List.iter
        (fun (r : Eval.kernel_result) ->
          let decomp = fig7_decomposition r.Eval.tuned in
          incr count;
          List.iter
            (fun (d, v) ->
              let cur = Option.value ~default:0.0 (Hashtbl.find_opt totals d) in
              Hashtbl.replace totals d (cur +. log v))
            decomp;
          let total =
            r.Eval.tuned.Ifko_search.Driver.ifko_mflops
            /. Float.max 1e-9 r.Eval.tuned.Ifko_search.Driver.fko_mflops
          in
          Table.add_row t
            ([ Defs.name r.Eval.kernel ]
            @ List.map (fun (_, v) -> Printf.sprintf "%+.0f%%" ((v -. 1.0) *. 100.0)) decomp
            @ [ Printf.sprintf "%.2fx" total ]))
        study.Eval.results;
      Buffer.add_string buf (Table.render t))
    studies;
  Buffer.add_string buf "Average contribution over all kernels, machines and contexts:\n";
  List.iter
    (fun d ->
      let v = exp (Option.value ~default:0.0 (Hashtbl.find_opt totals d) /. float_of_int (max 1 !count)) in
      Buffer.add_string buf
        (Printf.sprintf "  %-7s %+5.1f%%  |%s|\n" d ((v -. 1.0) *. 100.0)
           (Table.bar ~width:30 ~frac:((v -. 1.0) /. 0.5))))
    fig7_axes;
  Buffer.contents buf

let opteron_l2_note (study : Eval.study) =
  let avg m = Eval.average_percent study m in
  let sorted =
    List.sort (fun a b -> compare (avg b) (avg a)) Eval.methods
  in
  let top2 = match sorted with a :: b :: _ -> [ a; b ] | l -> l in
  let icc_vs_ifko =
    Stats.mean
      (List.map
         (fun (r : Eval.kernel_result) ->
           List.assoc Eval.Icc_ref r.Eval.mflops
           /. Float.max 1e-9 (List.assoc Eval.Ifko r.Eval.mflops))
         study.Eval.results)
  in
  Printf.sprintf
    "In-L2 Opteron check (paper Section 3): two best tuning mechanisms are %s,\n\
     and icc-tuned kernels run on average at %.0f%% of the speed of ifko-tuned code\n\
     (paper reports ifko then FKO, and 68%%).\n"
    (String.concat " then " (List.map Eval.method_name top2))
    (100.0 *. icc_vs_ifko)
