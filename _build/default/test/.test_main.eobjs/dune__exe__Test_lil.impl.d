test/test_lil.ml: Alcotest Block Cfg Format Hashtbl Ifko_util Instr List Option Reg Test_util Validate
