let min_float_list = function
  | [] -> invalid_arg "Stats.min_float_list: empty"
  | x :: rest -> List.fold_left min x rest

let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> invalid_arg "Stats.geomean: empty"
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
          acc +. log x)
        0.0 xs
    in
    exp (log_sum /. float_of_int (List.length xs))

let mflops ~flops ~cycles ~ghz =
  if cycles <= 0.0 then 0.0 else flops *. ghz *. 1e3 /. cycles

(* Guard non-finite inputs as well as non-positive ones: a method that
   failed timing reports neg_infinity, and 100*(-inf)/(-inf) or a
   division by a failed best would otherwise leak NaN into tables. *)
let percent_of ~best v =
  if best <= 0.0 || not (Float.is_finite best) || not (Float.is_finite v) then 0.0
  else 100.0 *. v /. best
let round1 x = Float.round (x *. 10.0) /. 10.0
