(** The first-class search-strategy interface.

    A strategy is a propose/observe loop: it proposes a batch of
    candidate parameter points, the runner measures them (through
    whatever batching the driver supplies — sequentially, or on a
    domain pool), the observed (point, performance) pairs are handed
    back, and the strategy proposes again until it returns the empty
    batch.  The paper's modified line search, the surrogate-model
    searcher and any future strategy all run behind this one
    interface, sharing the memo cache, the evaluation accounting and
    the determinism contract. *)

type probe = Ifko_transform.Params.t -> float
(** Performance of one parameter point (higher is better); the driver
    wires compilation, testing and timing into this. *)

type batch_map =
  (Ifko_transform.Params.t -> float) -> Ifko_transform.Params.t list -> float list
(** How one batch's fresh candidates are evaluated.  The default is a
    sequential left-to-right map; the driver substitutes a domain
    pool's order-preserving map to parallelize.  Results are handed to
    the strategy in proposal order regardless, so any order-preserving
    [batch_map] yields bit-identical search trajectories. *)

type t = {
  name : string;  (** for reports and the CLI ("linesearch", "surrogate") *)
  propose : unit -> Ifko_transform.Params.t list;
      (** the next batch of candidates; [[]] ends the search *)
  observe : (Ifko_transform.Params.t * float) list -> unit;
      (** exactly the proposed batch, in proposal order, with the
          measured performance of every point (memoized points included) *)
  best : unit -> Ifko_transform.Params.t * float;
      (** the winner so far, by the strategy's own tie-breaking *)
  contributions : unit -> (string * float) list;
      (** per-dimension (or per-phase) speedup decomposition *)
}

type result = {
  best : Ifko_transform.Params.t;
  best_perf : float;
  start_perf : float;  (** performance of the starting (default) point *)
  contributions : (string * float) list;
  evaluations : int;  (** distinct parameter points compiled and timed *)
  probes_to_best : int;
      (** 1-based evaluation index at which the final best performance
          was first measured — the probes-to-best metric searchbench
          races strategies on *)
}

val seq_map : batch_map
(** The default sequential evaluator (explicit left-to-right order). *)

val run :
  ?map_batch:batch_map ->
  init:Ifko_transform.Params.t ->
  make:(init_perf:float -> t) ->
  probe ->
  result
(** Drive a strategy to completion.  The runner probes [init] first
    (evaluation 1), constructs the strategy with its measured
    performance, then loops: propose, deduplicate against the memo
    cache in proposal order, evaluate the fresh points through
    [map_batch], observe.  Every distinct point is probed at most once
    across the whole search. *)
