(* The ifko command-line interface.

   Subcommands:
     ifko analyze  FILE            -- FKO's analysis report for a HIL kernel
     ifko compile  FILE [flags]    -- one FKO invocation; prints assembly
     ifko lint     FILE [flags]    -- static checks + per-pass validation
     ifko tune     FILE [flags]    -- the full iterative/empirical search
                                      (--store PATH resumes/persists results,
                                       --jobs N evaluates probes in parallel)
     ifko fuzz     [flags]         -- differential fuzzing of the pipeline
                                      (--replay PATH re-runs saved reproducers)
     ifko sim      FILE [flags]    -- one simulator run, both engines checked
                                      bit-for-bit (--profile: fast-path coverage,
                                      superblock fusion, cycle attribution)
     ifko store    stat/compact/clear PATH -- tuning-store maintenance

   Timing requires knowing how to build workloads for the kernel's
   parameters; the CLI binds every `ptr` parameter to a fresh random
   vector of length N, every int parameter to N, and every fp parameter
   to 0.77 — matching the library's BLAS workloads. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Fuzz reproducers carry an already-parsed kernel; everything else is
   HIL source.  Accepting both lets `ifko lint` sweep the checked-in
   corpus with the same invocation as the example kernels. *)
let load path =
  if Filename.check_suffix path ".repro" then
    (Ifko.Fuzz.Corpus.read path).Ifko.Fuzz.Corpus.kernel
    |> Ifko.Hil.Typecheck.check |> Ifko.Lower.lower
  else Ifko.compile_source (read_file path)

let machine_of = function
  | "p4e" -> Ifko_machine.Config.p4e
  | "opteron" -> Ifko_machine.Config.opteron
  | other -> failwith (Printf.sprintf "unknown machine %S (p4e|opteron)" other)

let context_of = function
  | "oc" -> Ifko_sim.Timer.Out_of_cache
  | "l2" -> Ifko_sim.Timer.In_l2
  | other -> failwith (Printf.sprintf "unknown context %S (oc|l2)" other)

(* Generic workload builder from the kernel's signature.  [seed] makes
   the random vectors reproducible — and is the seed the tuning store
   keys on, so journaled results never alias across workloads. *)
let generic_spec ?(seed = 0) (compiled : Ifko.Lower.compiled) =
  let prec =
    match compiled.Ifko.Lower.arrays with
    | a :: _ -> a.Ifko.Lower.a_elem
    | [] -> Instr.D
  in
  let make_env n =
    let bytes =
      max (1 lsl 20) ((List.length compiled.Ifko.Lower.arrays * n * 8) + (1 lsl 16))
    in
    let env = Ifko_sim.Env.create ~mem_bytes:bytes () in
    let rng = Ifko_util.Rng.create (seed + (31 * n) + 17) in
    List.iter
      (fun (p : Ifko_hil.Ast.param) ->
        match p.Ifko_hil.Ast.p_ty with
        | Ifko_hil.Ast.Int -> Ifko_sim.Env.bind_int env p.Ifko_hil.Ast.p_name n
        | Ifko_hil.Ast.Fp fp ->
          Ifko_sim.Env.bind_fp env p.Ifko_hil.Ast.p_name
            (match fp with Ifko_hil.Ast.Single -> Instr.S | Ifko_hil.Ast.Double -> Instr.D)
            0.77
        | Ifko_hil.Ast.Ptr fp ->
          let sz = match fp with Ifko_hil.Ast.Single -> Instr.S | Ifko_hil.Ast.Double -> Instr.D in
          Ifko_sim.Env.alloc_array env p.Ifko_hil.Ast.p_name sz n;
          Ifko_sim.Env.fill env p.Ifko_hil.Ast.p_name (fun _ ->
              Ifko_util.Rng.sign_float rng 1.0))
      compiled.Ifko.Lower.source.Ifko_hil.Ast.k_params;
    env
  in
  { Ifko_sim.Timer.make_env; ret_fsize = prec }

(* A generic tester: the untransformed lowering is the semantic
   reference for arbitrary user kernels. *)
let generic_test (compiled : Ifko.Lower.compiled) spec =
  (* The reference side is decoded once per tune, each candidate once
     per test — not once per test size. *)
  let cf_ref = Ifko_sim.Exec.compile compiled.Ifko.Lower.func in
  fun func ->
  let cf_opt = Ifko_sim.Exec.compile func in
  List.for_all
    (fun n ->
      let env_ref = spec.Ifko_sim.Timer.make_env n in
      let env_opt = spec.Ifko_sim.Timer.make_env n in
      match
        ( Ifko_sim.Exec.exec ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize cf_ref env_ref,
          Ifko_sim.Exec.exec ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize cf_opt env_opt )
      with
      | exception Ifko_sim.Exec.Trap _ -> false
      | r_ref, r_opt ->
        let rets_ok =
          match (r_ref.Ifko_sim.Exec.ret, r_opt.Ifko_sim.Exec.ret) with
          | None, None -> true
          | Some (Ifko_sim.Exec.Rint a), Some (Ifko_sim.Exec.Rint b) -> a = b
          | Some (Ifko_sim.Exec.Rfp a), Some (Ifko_sim.Exec.Rfp b) ->
            Ifko_sim.Verify.close ~tol:1e-4 a b
          | _ -> false
        in
        rets_ok
        && List.for_all
             (fun (a : Ifko.Lower.array_param) ->
               let xa = Ifko_sim.Env.to_array env_ref a.Ifko.Lower.a_name in
               let xb = Ifko_sim.Env.to_array env_opt a.Ifko.Lower.a_name in
               Array.for_all2 (fun u v -> Ifko_sim.Verify.close ~tol:1e-4 u v) xa xb)
             compiled.Ifko.Lower.arrays)
    [ 0; 1; 7; 130 ]

(* ---- analyze ---- *)

let analyze_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    let compiled = load file in
    print_string (Ifko.Report.to_string (Ifko.analyze compiled))
  in
  Cmd.v (Cmd.info "analyze" ~doc:"print FKO's analysis report for a HIL kernel")
    Term.(const run $ file)

(* ---- compile ---- *)

let machine_arg =
  Arg.(value & opt string "p4e" & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc:"p4e or opteron")

let sv_arg = Arg.(value & opt bool true & info [ "sv" ] ~doc:"SIMD vectorization")
let ur_arg = Arg.(value & opt int 0 & info [ "ur" ] ~doc:"unroll factor (0 = default)")
let ae_arg = Arg.(value & opt int 0 & info [ "ae" ] ~doc:"accumulator expansion")
let wnt_arg = Arg.(value & opt bool false & info [ "wnt" ] ~doc:"non-temporal writes")

let pf_arg =
  Arg.(value & opt int (-1) & info [ "pf-dist" ] ~doc:"prefetch distance in bytes (-1 = default)")

(* The parameter point the compile/lint flags select, starting from
   FKO's defaults for this kernel on this machine. *)
let point_of_flags ~cfg compiled sv ur ae wnt pf_dist =
  let d = Ifko.default_params ~cfg compiled in
  {
    d with
    Ifko.Params.sv = sv && d.Ifko.Params.sv;
    unroll = (if ur > 0 then ur else d.Ifko.Params.unroll);
    ae;
    wnt;
    prefetch =
      (if pf_dist < 0 then d.Ifko.Params.prefetch
       else
         List.map
           (fun (a, (s : Ifko.Params.pf_param)) -> (a, { s with Ifko.Params.pf_dist }))
           d.Ifko.Params.prefetch);
  }

let compile_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file machine sv ur ae wnt pf_dist =
    let cfg = machine_of machine in
    let compiled = load file in
    let params = point_of_flags ~cfg compiled sv ur ae wnt pf_dist in
    let func = Ifko.compile_point ~cfg compiled params in
    Printf.printf "; machine %s, parameters %s\n%s" cfg.Ifko.Config.name
      (Ifko.Params.to_string params) (Cfg.to_string func)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"run FKO once at a parameter point and print the assembly")
    Term.(const run $ file $ machine_arg $ sv_arg $ ur_arg $ ae_arg $ wnt_arg $ pf_arg)

(* ---- lint ---- *)

let lint_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let no_pipeline =
    Arg.(value & flag & info [ "no-pipeline" ] ~doc:"lint only the lowered kernel; skip per-pass validation")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"also print info-severity diagnostics")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "machine-readable output: one JSON array of diagnostic objects (severity, \
             code, pass, block, instr, message).  Exit 0 when clean, 1 when any \
             warning- or error-severity diagnostic was found, 2 on an internal \
             failure (a pass broke the kernel, unreadable input)")
  in
  let run file machine sv ur ae wnt pf_dist no_pipeline verbose json =
    (* --json contract: diagnostics are data, failures of the tool
       itself are exit 2 — scripts can tell "kernel has findings" from
       "lint could not run". *)
    let internal_error msg =
      if json then print_endline "[]";
      Printf.eprintf "lint: %s\n" msg;
      exit 2
    in
    match
      let cfg = machine_of machine in
      let compiled = load file in
      (cfg, compiled)
    with
    | exception e -> internal_error (Printexc.to_string e)
    | cfg, compiled -> (
      let line_bytes = cfg.Ifko.Config.prefetchable_line in
      let shown diags =
        if verbose || json then diags
        else
          List.filter (fun (d : Ifko.Diag.t) -> d.Ifko.Diag.severity <> Ifko.Diag.Info) diags
      in
      let print_diags diags =
        if not json then
          match shown diags with
          | [] -> ()
          | ds -> print_endline (Ifko.Diag.list_to_string ds)
      in
      (* Stage 1: the lowered kernel itself. *)
      let lowered = Ifko.Lint.check ~pass:"lowering" ~line_bytes compiled in
      print_diags lowered;
      (* Stage 2: the full pipeline at the selected parameter point, with
         lint + translation validation after every pass. *)
      let pipeline =
        if no_pipeline then Ok []
        else begin
          let params = point_of_flags ~cfg compiled sv ur ae wnt pf_dist in
          let check = Ifko.Passcheck.generic ~line_bytes compiled in
          let skips = ref [] in
          match
            Ifko.Pipeline.apply ~check ~on_skip:(fun d -> skips := d :: !skips)
              ~line_bytes compiled params
          with
          | exception Ifko.Passcheck.Pass_failed { pass; failure } ->
            Error
              (Printf.sprintf "pass %s broke the kernel: %s" pass
                 (Ifko.Passcheck.failure_to_string failure))
          | c ->
            let final = Ifko.Lint.check ~pass:"pipeline" ~line_bytes c in
            print_diags (List.rev !skips @ final);
            if not json then
              Printf.printf "%s: every pass validated at point %s\n"
                compiled.Ifko.Lower.source.Ifko.Hil.Ast.k_name
                (Ifko.Params.to_string params);
            Ok (List.rev !skips @ final)
        end
      in
      match pipeline with
      | Error msg ->
        if json then print_endline (Ifko.Diag.list_to_json lowered);
        internal_error msg
      | Ok final ->
        let all = lowered @ final in
        if json then print_endline (Ifko.Diag.list_to_json all);
        let findings =
          List.exists (fun (d : Ifko.Diag.t) -> d.Ifko.Diag.severity <> Ifko.Diag.Info) all
        in
        if json then exit (if findings then 1 else 0)
        else begin
          let errors = not (Ifko.Diag.is_clean all) in
          Printf.printf "lint: %s\n" (if errors then "errors found" else "clean");
          if errors then exit 1
        end)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "run the static-analysis suite on a HIL kernel, then validate every \
          transformation pass (lint + translation validation) at a parameter point")
    Term.(
      const run $ file $ machine_arg $ sv_arg $ ur_arg $ ae_arg $ wnt_arg $ pf_arg
      $ no_pipeline $ verbose $ json)

(* ---- tune ---- *)

let tune_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let context =
    Arg.(value & opt string "oc" & info [ "c"; "context" ] ~docv:"CTX" ~doc:"oc or l2")
  in
  let n = Arg.(value & opt int 80000 & info [ "n" ] ~doc:"problem size to tune for") in
  let flops =
    Arg.(value & opt float 2.0 & info [ "flops-per-n" ] ~doc:"FLOPs per element for MFLOPS")
  in
  let asm = Arg.(value & flag & info [ "S"; "asm" ] ~doc:"print the tuned assembly") in
  let check =
    Arg.(
      value & flag
      & info [ "check-each-pass" ]
          ~doc:
            "validate every transformation pass of every probed point (lint + \
             translation validation); the tune aborts naming the offending pass")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"PATH"
          ~doc:
            "persistent tuning store (JSON-lines journal): probe outcomes are \
             journaled as they are computed and repeat probes — including those of a \
             previously killed tune — are answered from it")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "evaluate probe batches on $(docv) worker domains; results are \
             bit-identical to --jobs 1")
  in
  let seed_arg =
    Arg.(
      value & opt int 20050614
      & info [ "seed" ] ~docv:"SEED" ~doc:"workload seed (part of the store key)")
  in
  let run file machine context n flops_per_n asm check_each_pass store_path jobs seed =
    let cfg = machine_of machine in
    let context = context_of context in
    let compiled = load file in
    let spec = generic_spec ~seed compiled in
    let store = Option.map (Ifko.Store.open_ ~seed) store_path in
    let tuned =
      Ifko.tune ~check_each_pass ?store ~jobs ~seed ~cfg ~context ~spec ~n ~flops_per_n
        ~test:(generic_test compiled spec) compiled
    in
    (match store with
    | Some st ->
      Printf.printf "store %s: %d probes answered from the journal, %d computed\n"
        (Ifko.Store.path st) (Ifko.Store.hits st) (Ifko.Store.misses st);
      Ifko.Store.close st
    | None -> ());
    print_string (Ifko.Report.to_string tuned.Ifko.Driver.report);
    Printf.printf "\nFKO default point : %8.1f MFLOPS  (%s)\n"
      tuned.Ifko.Driver.fko_mflops
      (Ifko.Params.to_string tuned.Ifko.Driver.default_params);
    Printf.printf "ifko tuned point  : %8.1f MFLOPS  (%s)\n" tuned.Ifko.Driver.ifko_mflops
      (Ifko.Params.to_string tuned.Ifko.Driver.best_params);
    Printf.printf "speedup %.2fx over FKO in %d evaluations\n"
      (tuned.Ifko.Driver.ifko_mflops /. Float.max 1e-9 tuned.Ifko.Driver.fko_mflops)
      tuned.Ifko.Driver.evaluations;
    List.iter
      (fun (dim, ratio) ->
        if ratio > 1.0001 then Printf.printf "  %-7s %+.1f%%\n" dim ((ratio -. 1.0) *. 100.0))
      tuned.Ifko.Driver.contributions;
    if asm then print_string (Cfg.to_string tuned.Ifko.Driver.best_func)
  in
  Cmd.v
    (Cmd.info "tune" ~doc:"iteratively and empirically tune a HIL kernel")
    Term.(
      const run $ file $ machine_arg $ context $ n $ flops $ asm $ check $ store_arg
      $ jobs_arg $ seed_arg)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let seed_arg =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"deterministic fuzz seed")
  in
  let count_arg =
    Arg.(value & opt int 100 & info [ "count" ] ~docv:"N" ~doc:"number of kernels to generate")
  in
  let max_size_arg =
    Arg.(
      value & opt int 5
      & info [ "max-size" ] ~docv:"K" ~doc:"maximum idioms per generated loop body")
  in
  let points_arg =
    Arg.(
      value & opt int 3
      & info [ "points-per-kernel" ] ~docv:"P" ~doc:"parameter points probed per kernel")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"write shrunk reproducers into $(docv) (content-addressed file names)")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check-each-pass" ]
          ~doc:
            "additionally validate every pipeline pass of every probed point (lint + \
             translation validation) — slower, catches bugs even when the final \
             output happens to agree")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"PATH"
          ~doc:
            "instead of fuzzing, re-run the reproducer file (or every *.repro in the \
             directory) $(docv) against the current pipeline")
  in
  let cross_check_arg =
    Arg.(
      value & flag
      & info [ "cross-check" ]
          ~doc:
            "tighten the oracle against the dependence analysis: kernels whose \
             references are proven independent must agree bit-exactly on array \
             contents (the reduction return keeps its ULP budget); a divergence \
             convicts a transform or the independence claim itself")
  in
  let run machine seed count max_size points_per_kernel corpus check_each_pass cross_check
      replay =
    let cfg = machine_of machine in
    match replay with
    | Some path ->
      let results =
        if Sys.file_exists path && Sys.is_directory path then
          Ifko.Fuzz.replay_dir ~check_each_pass ~cfg path
        else [ (path, Ifko.Fuzz.replay ~check_each_pass ~cfg path) ]
      in
      let failed = ref 0 in
      List.iter
        (fun (p, r) ->
          match r with
          | Ok () -> Printf.printf "ok   %s\n" p
          | Error e ->
            incr failed;
            Printf.printf "FAIL %s: %s\n" p e)
        results;
      Printf.printf "replay: %d reproducers, %d failing\n" (List.length results) !failed;
      if !failed > 0 then exit 1
    | None ->
      let stats =
        Ifko.Fuzz.run ~points_per_kernel ~max_size ~check_each_pass ~cross_check ?corpus
          ~log:print_endline ~cfg ~seed ~count ()
      in
      print_endline (Ifko.Fuzz.stats_to_string stats);
      if stats.Ifko.Fuzz.bugs <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "differentially fuzz the transformation pipeline: generate random well-typed \
          kernels, probe random parameter points, compare simulated results against \
          the untransformed lowering, shrink and persist any divergence")
    Term.(
      const run $ machine_arg $ seed_arg $ count_arg $ max_size_arg $ points_arg
      $ corpus_arg $ check $ cross_check_arg $ replay_arg)

(* ---- sim ---- *)

let sim_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let context =
    Arg.(value & opt string "oc" & info [ "c"; "context" ] ~docv:"CTX" ~doc:"oc or l2")
  in
  let n = Arg.(value & opt int 8192 & info [ "n" ] ~doc:"problem size to simulate") in
  let untimed =
    Arg.(value & flag & info [ "untimed" ] ~doc:"architectural semantics only, no timing model")
  in
  let engine =
    Arg.(
      value & opt string "both"
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "threaded, walker, or both (run the pre-decoded engine and the reference \
             tree-walker and check they agree bit-for-bit)")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "report fast-path coverage, superblock fusion, and per-component \
             cycle-attribution counters for the run")
  in
  let seed_arg =
    Arg.(value & opt int 20050614 & info [ "seed" ] ~docv:"SEED" ~doc:"workload seed")
  in
  let run file machine sv ur ae wnt pf_dist context n untimed engine profile seed =
    let cfg = machine_of machine in
    let context = context_of context in
    let compiled = load file in
    let params = point_of_flags ~cfg compiled sv ur ae wnt pf_dist in
    let func = Ifko.compile_point ~cfg compiled params in
    let cf = Ifko_sim.Exec.compile func in
    let spec = generic_spec ~seed compiled in
    (* Mirrors Timer.run_once, but keeps the memory system around so the
       profile counters can be reported afterwards. *)
    let run_engine exec_fn =
      let env = spec.Ifko_sim.Timer.make_env n in
      if untimed then (exec_fn ?timing:None env, None)
      else begin
        let ms = Ifko_machine.Memsys.create cfg in
        (match context with
        | Ifko_sim.Timer.Out_of_cache -> Ifko_machine.Memsys.reset ms ~flush:true
        | Ifko_sim.Timer.In_l2 ->
          Ifko_machine.Memsys.reset ms ~flush:true;
          Ifko_sim.Env.iter_array_lines env ~line:cfg.Ifko.Config.l2.Ifko.Config.line
            (fun addr -> Ifko_machine.Memsys.warm_l2 ms ~addr));
        (exec_fn ?timing:(Some (cfg, ms)) env, Some ms)
      end
    in
    let threaded ?timing env =
      Ifko_sim.Exec.exec ?timing ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize cf env
    in
    let walker ?timing env =
      Ifko_sim.Exec.run_reference ?timing ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize func env
    in
    let show name (r : Ifko_sim.Exec.result) =
      Printf.printf "  %-8s %d instrs, %d uops%s%s\n" name r.Ifko_sim.Exec.instr_count
        r.Ifko_sim.Exec.uop_count
        (if untimed then "" else Printf.sprintf ", %.1f cycles" r.Ifko_sim.Exec.cycles)
        (match r.Ifko_sim.Exec.ret with
        | None -> ""
        | Some (Ifko_sim.Exec.Rint i) -> Printf.sprintf ", ret %d" i
        | Some (Ifko_sim.Exec.Rfp f) -> Printf.sprintf ", ret %.17g" f)
    in
    Printf.printf "%s: n=%d, %s, %s, %s\n"
      compiled.Ifko.Lower.source.Ifko.Hil.Ast.k_name n cfg.Ifko.Config.name
      (if untimed then "untimed" else Ifko_sim.Timer.context_name context)
      (Ifko.Params.to_string params);
    let result, ms =
      match engine with
      | "threaded" ->
        let r, ms = run_engine threaded in
        show "threaded" r;
        (r, ms)
      | "walker" ->
        let r, ms = run_engine walker in
        show "walker" r;
        (r, ms)
      | "both" ->
        let r, ms = run_engine threaded in
        let r_ref, _ = run_engine walker in
        show "threaded" r;
        if r = r_ref then print_endline "  walker   identical (bit-identity check passed)"
        else begin
          show "walker" r_ref;
          prerr_endline "engines disagree: threaded result differs from the reference walker";
          Stdlib.exit 1
        end;
        (r, ms)
      | other -> failwith (Printf.sprintf "unknown engine %S (threaded|walker|both)" other)
    in
    ignore (result : Ifko_sim.Exec.result);
    if profile then begin
      let blocks, fused = Ifko_sim.Exec.fusion cf in
      Printf.printf "  profile:\n";
      Printf.printf "    superblocks: %d fused bodies covering %d instrs\n" blocks fused;
      match ms with
      | None -> print_endline "    (memory-system counters require a timed run)"
      | Some ms ->
        let p = Ifko_machine.Memsys.profile ms in
        let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b in
        Printf.printf "    loads  %d (fast-path %.1f%%)  stores %d (fast-path %.1f%%)\n"
          p.Ifko_machine.Memsys.loads
          (pct p.Ifko_machine.Memsys.fast_loads p.Ifko_machine.Memsys.loads)
          p.Ifko_machine.Memsys.stores
          (pct p.Ifko_machine.Memsys.fast_stores p.Ifko_machine.Memsys.stores);
        Printf.printf "    L1 %d hits / %d misses   L2 %d hits / %d misses\n"
          p.Ifko_machine.Memsys.l1_hits p.Ifko_machine.Memsys.l1_misses
          p.Ifko_machine.Memsys.l2_hits p.Ifko_machine.Memsys.l2_misses;
        Printf.printf
          "    demand misses %d (%.1f cycles total latency)   bus cycles %.1f\n"
          p.Ifko_machine.Memsys.demand_misses p.Ifko_machine.Memsys.demand_cycles
          p.Ifko_machine.Memsys.bus_cycles;
        Printf.printf "    sw prefetch %d issued / %d dropped   hw prefetch %d issued\n"
          p.Ifko_machine.Memsys.sw_pf_issued p.Ifko_machine.Memsys.sw_pf_dropped
          p.Ifko_machine.Memsys.hw_pf_issued
    end
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:
         "run a HIL kernel on the simulator at a parameter point; by default both \
          execution engines run and their results are checked bit-for-bit; --profile \
          reports fast-path coverage, superblock fusion and cycle attribution")
    Term.(
      const run $ file $ machine_arg $ sv_arg $ ur_arg $ ae_arg $ wnt_arg $ pf_arg
      $ context $ n $ untimed $ engine $ profile $ seed_arg)

(* ---- store ---- *)

let store_cmd =
  let path_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"PATH") in
  let stat =
    Cmd.v
      (Cmd.info "stat" ~doc:"summarize a tuning-store journal")
      Term.(const (fun p -> print_string (Ifko.Store.stat_string p)) $ path_arg)
  in
  let compact =
    Cmd.v
      (Cmd.info "compact"
         ~doc:"rewrite the journal with one record per key (atomic rename)")
      Term.(
        const (fun p ->
            if not (Sys.file_exists p) then begin
              Printf.eprintf "%s: no store\n" p;
              Stdlib.exit 1
            end;
            let st = Ifko.Store.open_ p in
            Ifko.Store.compact st;
            Ifko.Store.close st;
            print_string (Ifko.Store.stat_string p))
        $ path_arg)
  in
  let clear =
    Cmd.v
      (Cmd.info "clear" ~doc:"delete the journal")
      Term.(const Ifko.Store.clear $ path_arg)
  in
  Cmd.group
    (Cmd.info "store" ~doc:"maintain a persistent tuning store")
    [ stat; compact; clear ]

let () =
  let doc = "iterative floating point kernel optimizer (paper reproduction)" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "ifko" ~doc)
          [ analyze_cmd; compile_cmd; lint_cmd; tune_cmd; fuzz_cmd; sim_cmd; store_cmd ]))
