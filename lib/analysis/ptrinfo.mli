(** Moving-pointer analysis of the tunable loop.

    Identifies the arrays whose references increment with the loop —
    by default every such array is a valid prefetch target (the user
    can exclude arrays known to be cache-resident with mark-up), and
    their per-iteration byte strides drive prefetch insertion and the
    displacement folding performed by unrolling. *)

type moving = {
  array : Ifko_codegen.Lower.array_param;
  stride : int;
      (** net bytes the pointer advances per main-loop iteration
          (negative for descending loops) *)
  loads : int;  (** memory reads from this array per iteration *)
  stores : int;  (** memory writes to this array per iteration *)
}

type classified = {
  moving : moving list;
      (** arrays whose pointer advances only by constant self-increments *)
  irregular : Ifko_codegen.Lower.array_param list;
      (** arrays whose pointer register is redefined non-incrementally
          inside the loop: no stride can be attributed, so prefetch and
          any other stride-trusting transform skips them (surfaced as
          IFK013 by {!Lint}) *)
  stale : bool;
      (** a loop nest was marked but its labels no longer resolve to
          blocks (the pipeline's final cleanup merged them away) *)
}

val classify : Ifko_codegen.Lower.compiled -> classified
(** Full classification of the kernel's array parameters against the
    current tunable loop.  The one analysis behind {!analyze},
    {!stale} and {!prefetch_targets}. *)

val stale : Ifko_codegen.Lower.compiled -> bool
(** Whether the kernel carries loop-nest bookkeeping whose labels have
    gone stale — loop-aware analyses silently see "no loop" then, which
    {!Lint} surfaces as an explicit diagnostic. *)

val loop_blocks : Ifko_codegen.Lower.compiled -> Block.t list
(** The blocks of the current tunable loop (header, bodies, latch) the
    stride analysis is performed over — and hence the only blocks where
    a reported stride is meaningful.  [[]] when the kernel has no
    tunable loop or the loopnest labels have gone stale. *)

val analyze : Ifko_codegen.Lower.compiled -> moving list
(** Analyze the current main loop of the compiled kernel.  Arrays whose
    pointer register is updated by anything other than constant
    increments inside the loop are excluded (their motion is not
    predictable).  Returns [[]] when the kernel has no tunable loop. *)

val prefetch_targets : Ifko_codegen.Lower.compiled -> moving list
(** [analyze] filtered by the [NOPREFETCH] mark-up and to arrays that
    actually move, i.e. the paper's "list of all arrays that are valid
    targets for prefetch". *)
