(** Lowering of checked HIL kernels to LIL.

    The generated code is deliberately naive scalar code — one virtual
    register per HIL variable, loads/stores exactly where the source
    has them — because all optimization is the transformation
    pipeline's job (the paper performs {e all} tuning transformations
    in the backend).  The [OPTLOOP], if present, is emitted in the
    canonical count-down shape described in {!Loopnest}. *)

(** A pointer parameter of the kernel, as seen by analyses, the
    prefetch search and the timers. *)
type array_param = {
  a_name : string;
  a_reg : Reg.t;
  a_elem : Instr.fsize;
  a_output : bool;  (** the kernel stores through it (WNT candidate) *)
  a_noprefetch : bool;  (** user mark-up: exclude from prefetch search *)
  a_mayalias : bool;
      (** user mark-up: may overlap other arrays; dependence analysis
          must fail closed on every pair involving this array *)
}

(** Result of lowering: the LIL function plus the metadata every later
    stage consumes. *)
type compiled = {
  func : Cfg.func;
  loopnest : Loopnest.t option;  (** the tunable loop, if one was marked *)
  arrays : array_param list;
  ret_ty : Ifko_hil.Ast.ty option;
  source : Ifko_hil.Ast.kernel;  (** the kernel this was lowered from *)
}

exception Error of string

val lower : Ifko_hil.Typecheck.checked -> compiled
(** Lower a checked kernel.  @raise Error on constructs the backend
    does not support (e.g. integer division). *)
