(** Content-addressed cache of post-warm-up memory-system snapshots.

    The in-L2 timing context runs a warm-up loop before every measured
    run; the resulting memory-system state depends only on
    (kernel fingerprint, machine, context, N) — never on the transform
    parameters being probed.  A [Ckpt.t] captures that state once
    ({!Ifko_machine.Memsys.snapshot}) and blits it back for every later
    probe of the same tune, which is observably identical to re-running
    the warm-up (verified by the bit-identity tests).

    Invalidation mirrors the probe store's content addressing:
    - a {e kernel edit} changes the fingerprint, hence the key;
    - a {e cache-geometry (or any machine-parameter) change} changes
      the geometry digest recorded in the persistence directory's
      [store.meta], which wipes all persisted snapshots on open;
    - a {e stale or hand-edited store.meta} (wrong schema, unparsable,
      missing) likewise discards everything rather than trusting it.

    All three therefore force a fresh warm-up, never a wrong reuse. *)

type t

type stats = {
  hits : int;  (** warm states answered from memory *)
  disk_loads : int;  (** warm states answered from a persisted snapshot *)
  misses : int;  (** fresh warm-ups run (then captured) *)
  invalidated : int;  (** persisted snapshot sets discarded on open *)
  transient_hits : int;  (** resume-transients answered from the memo *)
  transient_misses : int;  (** resume-transients that had to be measured *)
  transients_loaded : int;  (** transients preloaded from disk on open *)
}

val create : ?dir:string -> cfg:Ifko_machine.Config.t -> unit -> t
(** In-memory checkpoint cache for machine [cfg]; with [dir], snapshots
    also persist there (one [<key>.ckpt] Marshal blob per key plus a
    [store.meta] recording the schema version and geometry digest).
    Persistence is best-effort: I/O failures only cost future
    warm-ups. *)

val key : t -> kernel:string -> context:string -> n:int -> string
(** Digest of (kernel fingerprint, machine name, context, N). *)

val with_state :
  t -> key:string -> Ifko_machine.Memsys.t -> warm:(Ifko_machine.Memsys.t -> float) -> float
(** Bring the memory system to the warm state for [key]: restore the
    cached snapshot when one exists, otherwise run [warm] (which must
    leave the system fully warmed) and capture the result.  Returns the
    entry's metadata float — [warm]'s return value, stored alongside
    the snapshot at creation (today's warm loops all return 0; the slot
    keeps room for warm-up-time measurements).  Per-candidate scalars
    belong in {!find_transient}/{!set_transient}, never here: one
    tune's probe points share a snapshot while running different code.
    Safe to share across domains. *)

val find_transient : t -> key:string -> float option
(** Look up a per-(warm state, compiled code) scalar — the sampled
    timer memoizes each candidate's resume-transient here, keyed by
    (snapshot key, code digest), so each distinct candidate's restart
    cost is priced exactly once.  With a persistence [dir], transients
    reload on open (from [transients.jsonl], %.17g round-trip exact),
    so a daemon restart does not repay every companion rate window;
    the file lives under the same [store.meta] guard as the snapshots
    and is wiped with them. *)

val set_transient : t -> key:string -> float -> unit
(** Record a transient (appending to [transients.jsonl] when
    persistent).  Values are deterministic functions of their key, so
    concurrent writers racing on one key are benign. *)

val int_memo : t -> key:string -> (unit -> int) -> int
(** Session-only memo for derived integers (the sampled timer's
    per-kernel window page geometry, which otherwise costs an
    environment build per measurement).  [f] must be a pure function
    of [key]; it runs outside the lock, and racing computations are
    benign. *)

val master_memo : t -> key:string -> (unit -> Env.master) -> Env.master
(** Session-only memo for pristine environment images (see
    {!Env.capture}), keyed by (kernel fingerprint, element count).
    Same purity contract as {!int_memo}. *)

val stats : t -> stats
val geometry_digest : t -> string
