open Ast

type env = (string * ty) list
type checked = { kernel : kernel; env : env; labels : string list }

exception Error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let lookup env x =
  match List.assoc_opt x env with
  | Some ty -> ty
  | None -> fail "unbound identifier %S" x

(* Numeric join: integer literals are allowed wherever a floating-point
   value is expected, so [Int] joins with [Fp p] to [Fp p]. *)
let join_types context a b =
  match (a, b) with
  | Int, Int -> Int
  | Fp p, Fp q when p = q -> Fp p
  | Fp p, Int | Int, Fp p -> Fp p
  | _ -> fail "%s: incompatible types %s and %s" context (string_of_ty a) (string_of_ty b)

let rec expr_type env = function
  | Int_lit _ -> Int
  | Fp_lit _ -> fail "untyped float literal outside assignment context"
  | Var x -> (
    match lookup env x with
    | Ptr _ -> fail "pointer %S used as a value" x
    | ty -> ty)
  | Load (p, _) -> (
    match lookup env p with
    | Ptr prec -> Fp prec
    | ty -> fail "indexing non-pointer %S of type %s" p (string_of_ty ty))
  | Binop (op, a, b) ->
    join_types (Printf.sprintf "operator %s" (string_of_binop op)) (numeric_type env a)
      (numeric_type env b)
  | Abs e | Sqrt e | Neg e -> numeric_type env e

(* Like [expr_type] but gives float literals their natural Fp type when
   they appear inside larger expressions: the precision is resolved by
   the join with the other operand or the assignment target. *)
and numeric_type env = function
  | Fp_lit _ -> Int (* neutral: joins with anything numeric *)
  | e -> expr_type env e

let check_expr_against env context target_ty e =
  let ty =
    match e with
    | Fp_lit _ -> target_ty
    | e -> (
      match numeric_type env e with
      | Int -> target_ty (* integer literals/exprs coerce into fp contexts *)
      | ty -> ty)
  in
  match (target_ty, ty) with
  | Int, Int -> ()
  | Fp p, Fp q when p = q -> ()
  | Fp _, Int -> ()
  | _ ->
    fail "%s: expected %s but expression has type %s" context (string_of_ty target_ty)
      (string_of_ty ty)

(* Collect label definitions and check uniqueness. *)
let rec collect_labels stmts acc =
  List.fold_left
    (fun acc stmt ->
      match stmt with
      | Label l ->
        if List.mem l acc then fail "label %S defined twice" l;
        l :: acc
      | Loop lp -> collect_labels lp.loop_body acc
      | If_then (_, _, _, a, b) -> collect_labels b (collect_labels a acc)
      | _ -> acc)
    acc stmts

let rec collect_loop_vars stmts acc =
  List.fold_left
    (fun acc stmt ->
      match stmt with
      | Loop lp -> collect_loop_vars lp.loop_body (lp.loop_var :: acc)
      | If_then (_, _, _, a, b) -> collect_loop_vars b (collect_loop_vars a acc)
      | _ -> acc)
    acc stmts

let rec contains_loop stmts =
  List.exists
    (function
      | Loop _ -> true
      | If_then (_, _, _, a, b) -> contains_loop a || contains_loop b
      | _ -> false)
    stmts

let rec count_opt_loops stmts =
  List.fold_left
    (fun n stmt ->
      match stmt with
      | If_then (_, _, _, a, b) -> n + count_opt_loops a + count_opt_loops b
      | Loop lp ->
        let inner = count_opt_loops lp.loop_body in
        if lp.loop_opt && contains_loop lp.loop_body then
          fail "OPTLOOP %S contains a nested loop; only innermost loops can be tuned"
            lp.loop_var;
        n + (if lp.loop_opt then 1 else 0) + inner
      | _ -> n)
    0 stmts

let check kernel =
  (* Unique parameter/local names. *)
  let param_names = List.map (fun p -> p.p_name) kernel.k_params in
  let local_names = List.concat_map (fun d -> d.d_names) kernel.k_locals in
  let all_names = param_names @ local_names in
  let rec check_unique = function
    | [] -> ()
    | x :: rest ->
      if List.mem x rest then fail "identifier %S declared twice" x;
      check_unique rest
  in
  check_unique all_names;
  List.iter
    (fun d ->
      match (d.d_ty, d.d_init) with
      | Ptr _, _ -> fail "local pointers are not supported (%s)" (String.concat "," d.d_names)
      | _ -> ())
    kernel.k_locals;
  let env_params = List.map (fun p -> (p.p_name, p.p_ty)) kernel.k_params in
  let env_locals =
    List.concat_map (fun d -> List.map (fun x -> (x, d.d_ty)) d.d_names) kernel.k_locals
  in
  let loop_vars = collect_loop_vars kernel.k_body [] in
  let env_loops =
    List.filter_map
      (fun v -> if List.mem_assoc v (env_params @ env_locals) then None else Some (v, Int))
      (List.sort_uniq compare loop_vars)
  in
  let env = env_params @ env_locals @ env_loops in
  List.iter
    (fun v ->
      match lookup env v with
      | Int -> ()
      | ty -> fail "loop index %S must be int, not %s" v (string_of_ty ty))
    loop_vars;
  let labels = collect_labels kernel.k_body [] in
  ignore (count_opt_loops kernel.k_body : int);
  (* Normalize statements and check types / label references. *)
  let rec norm_stmt stmt =
    match stmt with
    | Assign (x, e) -> (
      match lookup env x with
      | Ptr _ -> fail "cannot assign to pointer %S (only += literal allowed)" x
      | ty ->
        check_expr_against env (Printf.sprintf "assignment to %S" x) ty e;
        Assign (x, e))
    | Assign_op (op, x, e) -> (
      match lookup env x with
      | Ptr _ -> (
        match (op, e) with
        | Add, Int_lit k -> Ptr_inc (x, k)
        | Sub, Int_lit k -> Ptr_inc (x, -k)
        | Add, Var v when lookup env v = Int -> Ptr_inc_var (x, v)
        | _ ->
          fail "pointer %S may only be incremented by an integer literal or int variable" x)
      | ty ->
        check_expr_against env (Printf.sprintf "update of %S" x) ty e;
        Assign_op (op, x, e))
    | Store (p, k, e) -> (
      match lookup env p with
      | Ptr prec ->
        check_expr_against env (Printf.sprintf "store to %S" p) (Fp prec) e;
        Store (p, k, e)
      | ty -> fail "storing through non-pointer %S of type %s" p (string_of_ty ty))
    | Ptr_inc (p, k) -> (
      match lookup env p with
      | Ptr _ -> Ptr_inc (p, k)
      | ty -> fail "pointer increment of non-pointer %S (%s)" p (string_of_ty ty))
    | Ptr_inc_var (p, v) -> (
      match (lookup env p, lookup env v) with
      | Ptr _, Int -> Ptr_inc_var (p, v)
      | Ptr _, ty -> fail "stride %S must be int, not %s" v (string_of_ty ty)
      | ty, _ -> fail "pointer increment of non-pointer %S (%s)" p (string_of_ty ty))
    | Loop lp ->
      check_expr_against env "loop bound" Int lp.loop_from;
      check_expr_against env "loop bound" Int lp.loop_to;
      if lp.loop_step <> 1 && lp.loop_step <> -1 then
        fail "loop step must be 1 or -1, got %d" lp.loop_step;
      Loop { lp with loop_body = List.map norm_stmt lp.loop_body }
    | If_goto (op, a, b, l) ->
      if not (List.mem l labels) then fail "GOTO to undefined label %S" l;
      let ta = numeric_type env a and tb = numeric_type env b in
      ignore (join_types "comparison" ta tb : ty);
      If_goto (op, a, b, l)
    | If_then (op, a, b, then_body, else_body) ->
      let ta = numeric_type env a and tb = numeric_type env b in
      ignore (join_types "comparison" ta tb : ty);
      If_then (op, a, b, List.map norm_stmt then_body, List.map norm_stmt else_body)
    | Goto l ->
      if not (List.mem l labels) then fail "GOTO to undefined label %S" l;
      Goto l
    | Label l -> Label l
    | Return None ->
      if kernel.k_ret <> None then fail "RETURN without a value in a returning kernel";
      Return None
    | Return (Some e) -> (
      match kernel.k_ret with
      | None -> fail "RETURN with a value in a void kernel"
      | Some ty ->
        check_expr_against env "return value" ty e;
        Return (Some e))
  in
  let body = List.map norm_stmt kernel.k_body in
  { kernel = { kernel with k_body = body }; env; labels }
