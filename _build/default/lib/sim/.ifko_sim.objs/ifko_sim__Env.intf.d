lib/sim/env.mli: Bytes Instr
