lib/hil/pp.mli: Ast
