lib/transform/params.ml: Ifko_analysis Ifko_codegen Instr List Printf String
