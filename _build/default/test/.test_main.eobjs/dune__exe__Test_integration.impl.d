test/test_integration.ml: Alcotest Defs Hil_sources Ifko_analysis Ifko_blas Ifko_eval Ifko_machine Ifko_search Ifko_sim Ifko_transform Instr Lazy List Test_util Workload
