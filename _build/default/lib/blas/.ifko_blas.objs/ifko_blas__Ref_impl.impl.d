lib/blas/ref_impl.ml: Array Float Instr Int32
