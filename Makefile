# Convenience targets; `make check` is what CI runs.

.PHONY: all build test fmt check bench

all: build

build:
	dune build @all

test:
	dune runtest

# Formatting check: `dune build @fmt` requires ocamlformat, which not
# every environment has — skip with a notice rather than fail there.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

check: build fmt test

bench:
	dune exec bench/main.exe
