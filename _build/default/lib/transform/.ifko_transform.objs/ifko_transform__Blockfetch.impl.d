lib/transform/blockfetch.ml: Block Cfg Ifko_analysis Ifko_codegen Instr List Loopnest Lower Ptrinfo Reg
