(* Quickstart: tune one BLAS kernel end to end.

     dune exec examples/quickstart.exe

   Walks the paper's Figure 1 explicitly: write a kernel in HIL, let
   FKO analyze it, look at the default (statically tuned) code, run the
   iterative and empirical search, and compare. *)

let ddot_source =
  {|KERNEL ddot(N : int, X : ptr double, Y : ptr double) RETURNS double
VARS
  dot : double = 0.0;
  x, y : double;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    y = Y[0];
    dot += x * y;
    X += 1;
    Y += 1;
  LOOP_END
  RETURN dot;
END
|}

let () =
  print_endline "== 1. the kernel, in HIL (the paper's Figure 6a) ==";
  print_string ddot_source;

  (* Front end: parse, check, lower to the LIL backend form. *)
  let compiled = Ifko.compile_source ddot_source in

  print_endline "\n== 2. FKO's analysis, as reported to the search ==";
  print_string (Ifko.Report.to_string (Ifko.analyze compiled));

  (* One FKO invocation at the default parameter point. *)
  let cfg = Ifko.Config.p4e in
  let default = Ifko.default_params ~cfg compiled in
  Printf.printf "\n== 3. FKO defaults: %s ==\n" (Ifko.Params.to_string default);
  let fko_func = Ifko.compile_point ~cfg compiled default in
  print_string (Cfg.to_string fko_func);

  (* The empirical search: timers + testers over the simulated P4E. *)
  print_endline "== 4. iterative and empirical tuning (simulated P4E, out of cache) ==";
  let id = { Ifko.Blas.Defs.routine = Ifko.Blas.Defs.Dot; prec = Instr.D } in
  let spec = Ifko.Blas.Workload.timer_spec id ~seed:42 in
  let test func =
    List.for_all
      (fun n ->
        let env = Ifko.Blas.Workload.make_env id ~seed:43 n in
        let expect = Ifko.Blas.Workload.expectation id ~seed:43 n in
        Ifko.Verify.check
          ~tol:(Ifko.Blas.Workload.tolerance id ~n)
          ~ret_fsize:Instr.D func env expect
        = Ok ())
      [ 1; 33; 260 ]
  in
  let tuned =
    Ifko.tune ~cfg ~context:Ifko.Timer.Out_of_cache ~spec ~n:80000 ~flops_per_n:2.0 ~test
      compiled
  in
  Printf.printf "FKO  (static defaults) : %8.1f MFLOPS\n" tuned.Ifko.Driver.fko_mflops;
  Printf.printf "ifko (empirical search): %8.1f MFLOPS   params %s\n"
    tuned.Ifko.Driver.ifko_mflops
    (Ifko.Params.to_string tuned.Ifko.Driver.best_params);
  Printf.printf "speedup %.2fx after %d search evaluations\n"
    (tuned.Ifko.Driver.ifko_mflops /. tuned.Ifko.Driver.fko_mflops)
    tuned.Ifko.Driver.evaluations;
  print_endline "\nper-transformation contribution of the search:";
  List.iter
    (fun (dim, ratio) ->
      if ratio > 1.0001 then
        Printf.printf "  %-7s %+5.1f%%\n" dim ((ratio -. 1.0) *. 100.0))
    tuned.Ifko.Driver.contributions
