(** Greedy minimization of fuzz failures.

    Both halves of a failing case shrink: the kernel AST (statement
    removal, branch flattening, expression simplification, pruning of
    now-unused declarations) and the parameter point (each transform
    pushed toward its identity value — off, unroll 1, no prefetch —
    one field at a time).  A candidate is adopted only if the failure
    predicate still holds; the result is a local fixpoint, so
    re-shrinking an already-shrunk case returns it unchanged (checked
    in the test suite). *)

val kernel_candidates : Ifko_hil.Ast.kernel -> Ifko_hil.Ast.kernel list
(** One-step-smaller kernels, in deterministic order, each with unused
    locals/parameters pruned.  Candidates need not typecheck — callers
    filter through their failure predicate. *)

val params_candidates : Ifko_transform.Params.t -> Ifko_transform.Params.t list
(** One-step-closer-to-identity parameter points, deterministic order. *)

val minimize :
  ?max_attempts:int ->
  fails:(Ifko_hil.Ast.kernel -> Ifko_transform.Params.t -> bool) ->
  Ifko_hil.Ast.kernel ->
  Ifko_transform.Params.t ->
  Ifko_hil.Ast.kernel * Ifko_transform.Params.t
(** [minimize ~fails k p] greedily applies the first still-failing
    candidate until none applies (or [max_attempts] predicate calls,
    default 400, are spent).  [fails] must be total; exceptions it
    raises count as "does not fail". *)
