# Convenience targets; `make check` is what CI runs.

.PHONY: all build test fmt check bench simbench servebench searchbench servesmoke fuzz lint-examples

all: build

build:
	dune build @all

test:
	dune runtest

# Formatting check: `dune build @fmt` requires ocamlformat, which not
# every environment has — skip with a notice rather than fail there.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
		dune build @fmt; \
	else \
		echo "ocamlformat not installed; skipping format check"; \
	fi

check: build fmt test

bench:
	dune exec bench/main.exe

# Simulator-throughput report: interpreted MIPS of the reference
# walker vs. the threaded-code engine on every BLAS kernel, with
# fast-path coverage and cycle attribution, plus the sampled-vs-full
# fidelity comparison.  Guarded against the committed results (the
# baseline is read before the results file is rewritten): a >15%
# engine-speedup geomean regression fails the target, as does sampled
# fidelity exceeding its 1% cycle-error budget (against this run and
# against the baseline's full-fidelity cycles) or the sampled work
# reduction dropping under 5x.
simbench:
	dune exec bench/main.exe -- --exp simbench --no-store --profile \
		--baseline BENCH_results.json

# Load generator against an in-process tuning daemon: zipf-skewed
# tune/lookup mix from concurrent clients; reports throughput, tail
# latency and warm hit rate, and fails unless the daemon's replies are
# bit-identical to a sequential Driver.tune and the warm hit rate
# clears 90%.
servebench:
	dune exec bench/main.exe -- --exp servebench --no-store

# Search-strategy race: probes-to-best and best MFLOPS of the line
# search, the cold surrogate, and the store-warmed surrogate on every
# BLAS kernel (deterministic simulator — exactly reproducible).  Fails
# unless the surrogate's probes-to-best geomean stays under 0.6x of
# linesearch at same-or-better MFLOPS, and warm starts stay under 0.5x
# of the surrogate's own cold probes-to-best.
searchbench:
	dune exec bench/main.exe -- --exp searchbench --no-store

# Tuning-service smoke: daemon on a Unix socket, cold tune, warm
# lookup (must be a cache hit), stat, graceful shutdown — every step
# timeout-bounded.
servesmoke: build
	sh scripts/serve_smoke.sh

# Golden lint gate: `ifko lint --json` over the example kernels and
# the checked-in fuzz reproducers must match the committed *.lint.json
# goldens byte for byte — a new finding (or a silently lost one) fails
# the gate.  After an intentional linter change, regenerate with
#   dune exec bin/ifko_cli.exe -- lint FILE --json > BASE.lint.json
lint-examples: build
	@fail=0; \
	for f in examples/kernels/*.hil test/corpus/*.repro; do \
		g="$${f%.*}.lint.json"; \
		out=$$(dune exec --no-build bin/ifko_cli.exe -- lint "$$f" --json); \
		code=$$?; \
		if [ $$code -eq 2 ]; then \
			echo "lint-examples: $$f: internal error"; fail=1; \
		elif [ ! -f "$$g" ]; then \
			echo "lint-examples: $$f: missing golden $$g"; fail=1; \
		elif [ "$$out" != "$$(cat "$$g")" ]; then \
			echo "lint-examples: $$f: diagnostics differ from $$g"; \
			echo "  expected: $$(cat "$$g")"; \
			echo "  got:      $$out"; fail=1; \
		fi; \
	done; \
	[ $$fail -eq 0 ] && echo "lint-examples: all goldens match"; \
	exit $$fail

# Deterministic fuzz smoke (CI runs the same seed; the nightly
# workflow explores a fresh date-derived seed at a larger budget).
# --cross-check holds provably-independent kernels to bit-exact
# array agreement against the dependence analysis.
fuzz:
	dune exec bin/ifko_cli.exe -- fuzz --seed 42 --count 200 --cross-check
