lib/lil/instr.ml: Buffer Option Printf Reg
