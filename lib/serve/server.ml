(* The `ifko serve` daemon: a socket front-end over Driver.tune.

   One systhread per connection reads newline-delimited JSON requests
   (Proto) and answers them in order.  All in-flight tunes share one
   sharded probe store (single-flight per probe key) and one domain
   pool, so concurrent clients' probe compilations batch onto the same
   workers and identical cold tunes coalesce into one search.  Results
   are cached as ordinary store entries under Store.tune_key, which
   makes warm tunes and lookups O(hash lookup) and persists them across
   daemon restarts.

   The determinism contract: any reply computed here is bit-identical
   to a sequential, storeless Driver.tune of the same request — probes
   are pure, caching round-trips floats through %.17g, and the search
   itself is order-preserving under the pool. *)

module Store = Ifko_store.Store
module Json = Store.Json
module Driver = Ifko_search.Driver
module Generic = Ifko_search.Generic
module Codecache = Ifko_search.Codecache
module Config = Ifko_machine.Config
module Timer = Ifko_sim.Timer
module Ckpt = Ifko_sim.Ckpt

type listen = [ `Unix of string | `Tcp of string * int ]

type config = {
  listen : listen;
  store_dir : string;
  shards : int;
  jobs : int;
  replica : bool;
  max_bytes : int option;  (** whole-store eviction budget *)
  max_age : float option;  (** seconds; entries older are evictable *)
  log : string -> unit;
}

let default_config ~store_dir listen =
  {
    listen;
    store_dir;
    shards = 8;
    jobs = 1;
    replica = false;
    max_bytes = None;
    max_age = None;
    log = ignore;
  }

let machine_of = function
  | "p4e" -> Ok Config.p4e
  | "opteron" -> Ok Config.opteron
  | other -> Error (Printf.sprintf "unknown machine %S (p4e|opteron)" other)

let context_of = function
  | "oc" -> Ok Timer.Out_of_cache
  | "l2" -> Ok Timer.In_l2
  | other -> Error (Printf.sprintf "unknown context %S (oc|l2)" other)

(* ---------------- server state ---------------- *)

type tune_cell = { mutable result : (Proto.tune_reply, string) result option }

type t = {
  cfg : config;
  store : Shard_store.t;
  pool : Ifko_par.Par.Pool.t option;
  clock : unit -> float;
  started : float;
  wake_wr : Unix.file_descr;  (* self-pipe: unblocks the accept select *)
  mu : Mutex.t;
  cv : Condition.t;
  mutable stopping : bool;
  mutable active : int;  (* live connection threads *)
  conns : (Unix.file_descr, unit) Hashtbl.t;
  tune_flight : (string, tune_cell) Hashtbl.t;
  codecache : Codecache.t;
      (* daemon-wide: distinct in-flight tunes (same kernel, different
         N / context / fidelity) compile each candidate once *)
  ckpts : (string, Ckpt.t) Hashtbl.t;
      (* per machine name, created on first use; persisted under
         store_dir/ckpt-<machine> so warm states survive restarts *)
  mutable n_requests : int;
  mutable n_tunes : int;  (* tune ops that ran the search *)
  mutable n_tune_hits : int;  (* tune ops answered from the result cache *)
  mutable n_lookups : int;
  mutable n_errors : int;
}

let logf t fmt = Printf.ksprintf t.cfg.log fmt

(* ---------------- tune / lookup ---------------- *)

let compile_kernel src =
  match
    src |> Ifko_hil.Parser.parse_kernel |> Ifko_hil.Typecheck.check
    |> Ifko_codegen.Lower.lower
  with
  | compiled -> Ok compiled
  | exception Failure msg -> Error msg
  | exception e -> Error (Printexc.to_string e)

let ( let* ) = Result.bind

(* A cached tune result is an ordinary store entry: outcome carries the
   tuned MFLOPS, params a small JSON object with the rest of the reply.
   Reusing the probe journal means sharding, replica refresh, eviction,
   compaction and statistics all apply to results for free. *)
let decode_result (outcome, params, _prov) =
  match outcome with
  | Store.Timed { mflops; _ } -> (
    match Json.parse params with
    | exception Json.Bad -> None
    | fields -> (
      match
        (Json.str fields "best", Json.num fields "fko", Json.num fields "evals")
      with
      | Some best, Some fko, Some evals ->
        Some
          { Proto.best; mflops; fko_mflops = fko;
            evaluations = int_of_float evals; hit = true }
      | _ -> None))
  | _ -> None

let encode_result (tuned : Driver.tuned) =
  (* [kernel] and [feat] make the entry usable as a warm-start donor
     (Warmstart.donor_of_entry); decode_result ignores the extras, so
     old and new entries interoperate both ways. *)
  let params =
    Json.render
      [ ("best", Json.S (Ifko_transform.Params.canonical tuned.Driver.best_params));
        ("fko", Json.N tuned.Driver.fko_mflops);
        ("evals", Json.N (float_of_int tuned.Driver.evaluations));
        ( "kernel",
          Json.S tuned.Driver.report.Ifko_analysis.Report.kernel_name );
        ( "feat",
          Ifko_search.Warmstart.feat_json
            (Ifko_analysis.Report.features tuned.Driver.report) );
      ]
  in
  let reply =
    { Proto.best = Ifko_transform.Params.canonical tuned.Driver.best_params;
      mflops = tuned.Driver.ifko_mflops;
      fko_mflops = tuned.Driver.fko_mflops;
      evaluations = tuned.Driver.evaluations;
      hit = false;
    }
  in
  (params, Store.Timed { mflops = tuned.Driver.ifko_mflops; cycles = 0.0 }, reply)

(* Resolve a request's kernel text down to the result-cache key.  Any
   source edit changes the lowered fingerprint, hence the key. *)
let resolve (a : Proto.tune_args) =
  let* cfgm = machine_of a.machine in
  let* context = context_of a.context in
  let* compiled = compile_kernel a.kernel in
  let key =
    Store.tune_key
      ?strategy:(if a.strategy = "linesearch" then None else Some a.strategy)
      ~kernel:(Driver.kernel_fingerprint compiled)
      ~machine:cfgm.Config.name ~context:(Timer.context_name context) ~n:a.n
      ~seed:a.seed ~check:a.check ~flops_per_n:a.flops_per_n ()
  in
  Ok (cfgm, context, compiled, key)

let lookup_result t key =
  match Shard_store.find_entry t.store ~key with
  | None -> None
  | Some entry -> decode_result entry

(* One persistent checkpoint cache per machine: warm states and their
   companion transients are keyed by (kernel|seed, context, N) inside,
   so every tune of a machine shares the same cache safely. *)
let ckpt_for t cfgm =
  let name = cfgm.Config.name in
  Mutex.lock t.mu;
  let c =
    match Hashtbl.find_opt t.ckpts name with
    | Some c -> c
    | None ->
      let dir = Filename.concat t.cfg.store_dir ("ckpt-" ^ name) in
      let c = Ckpt.create ~dir ~cfg:cfgm () in
      Hashtbl.add t.ckpts name c;
      c
  in
  Mutex.unlock t.mu;
  c

(* The daemon's donor scan for warm-started requests: every shard's
   tune-level entries, in deterministic shard/key order.  The scan is
   read-only and cheap next to even one probe, so it runs per warm
   request — always reflecting the newest completed tunes. *)
let donors_of_shards store =
  List.rev
    (Shard_store.fold_entries store ~init:[]
       ~f:(fun acc ~key:_ ~params ~prov outcome ->
         match Ifko_search.Warmstart.donor_of_entry ~params ~prov outcome with
         | Some d -> d :: acc
         | None -> acc))

let compute_tune t (a : Proto.tune_args) cfgm context compiled key =
  match
    let spec = Generic.spec ~seed:a.seed compiled in
    let strategy =
      match Driver.strategy_of_string a.strategy with
      | Ok s -> s
      | Error msg -> failwith msg (* parse_args validated; belt and braces *)
    in
    let donors = if a.warm_start then donors_of_shards t.store else [] in
    Driver.tune ~check_each_pass:a.check ~strategy ~warm_start:a.warm_start ~donors
      ~cache:(Shard_store.cached t.store)
      ?pool:t.pool ~seed:a.seed ~ckpt:(ckpt_for t cfgm) ~codecache:t.codecache
      ~cfg:cfgm ~context ~spec ~n:a.n
      ~flops_per_n:a.flops_per_n
      ~test:(Generic.test compiled spec)
      compiled
  with
  | exception Failure msg -> Error msg
  | exception e -> Error (Printexc.to_string e)
  | tuned ->
    let params, outcome, reply = encode_result tuned in
    let prov =
      Printf.sprintf "tune %s@%s/%s/n=%d"
        compiled.Ifko_codegen.Lower.source.Ifko_hil.Ast.k_name a.machine a.context
        a.n
    in
    Shard_store.add t.store ~key ~params ~prov outcome;
    Ok reply

(* Opportunistic maintenance: after every computed tune, apply the
   configured bounds (age first, then size) — shards compact themselves
   only when something was actually dropped, so a warm steady state
   costs one stat per tune. *)
let apply_bounds t =
  match (t.cfg.max_bytes, t.cfg.max_age) with
  | None, None -> ()
  | max_bytes, max_age ->
    let dropped =
      Shard_store.evict ?max_bytes ?max_age ~now:(t.clock ()) t.store
    in
    if dropped > 0 then logf t "evicted %d entries" dropped

(* Whole-tune single flight, mirroring Shard_store.cached: concurrent
   cold tunes of the same request run the search once.  (Probe-level
   single flight alone would dedup the probes but still replay the
   line-search bookkeeping per client.) *)
let rec tune_shared t (a : Proto.tune_args) cfgm context compiled key =
  match lookup_result t key with
  | Some r ->
    Mutex.lock t.mu;
    t.n_tune_hits <- t.n_tune_hits + 1;
    Mutex.unlock t.mu;
    Ok r
  | None ->
    Mutex.lock t.mu;
    (match Hashtbl.find_opt t.tune_flight key with
    | Some c ->
      let rec wait () =
        match c.result with
        | Some r ->
          (match r with
          | Ok _ -> t.n_tune_hits <- t.n_tune_hits + 1
          | Error _ -> ());
          Mutex.unlock t.mu;
          Result.map (fun (r : Proto.tune_reply) -> { r with Proto.hit = true }) r
        | None ->
          if not (Hashtbl.mem t.tune_flight key) then begin
            Mutex.unlock t.mu;
            tune_shared t a cfgm context compiled key
          end
          else begin
            Condition.wait t.cv t.mu;
            wait ()
          end
      in
      wait ()
    | None ->
      let c = { result = None } in
      Hashtbl.add t.tune_flight key c;
      t.n_tunes <- t.n_tunes + 1;
      Mutex.unlock t.mu;
      let r = compute_tune t a cfgm context compiled key in
      Mutex.lock t.mu;
      c.result <- Some r;
      Hashtbl.remove t.tune_flight key;
      Condition.broadcast t.cv;
      Mutex.unlock t.mu;
      if Result.is_ok r then apply_bounds t;
      r)

let do_tune t a =
  let* cfgm, context, compiled, key = resolve a in
  tune_shared t a cfgm context compiled key

let do_lookup t a =
  let* _, _, _, key = resolve a in
  Mutex.lock t.mu;
  t.n_lookups <- t.n_lookups + 1;
  Mutex.unlock t.mu;
  Ok (lookup_result t key)

(* ---------------- stat ---------------- *)

let stat_fields t =
  let s = Shard_store.stat t.store in
  Mutex.lock t.mu;
  let ckpt_stats = Hashtbl.fold (fun _ c acc -> Ckpt.stats c :: acc) t.ckpts [] in
  let server =
    [ ("uptime_s", Json.N (Float.max 0.0 (t.clock () -. t.started)));
      ("requests", Json.N (float_of_int t.n_requests));
      ("tunes", Json.N (float_of_int t.n_tunes));
      ("tune_hits", Json.N (float_of_int t.n_tune_hits));
      ("lookups", Json.N (float_of_int t.n_lookups));
      ("errors", Json.N (float_of_int t.n_errors));
      ("inflight_tunes", Json.N (float_of_int (Hashtbl.length t.tune_flight)));
      ("connections", Json.N (float_of_int t.active));
      ("jobs", Json.N (float_of_int t.cfg.jobs));
      ("shards", Json.N (float_of_int (Shard_store.shard_count t.store)));
      ("replica", Json.B t.cfg.replica);
    ]
  in
  Mutex.unlock t.mu;
  (* warm-state checkpoint + compiled-candidate cache effectiveness,
     summed over machines: how much per-probe setup the daemon skipped *)
  let sum f = float_of_int (List.fold_left (fun a st -> a + f st) 0 ckpt_stats) in
  let ckpt =
    [ ("hits", Json.N (sum (fun (st : Ckpt.stats) -> st.Ckpt.hits)));
      ("disk_loads", Json.N (sum (fun st -> st.Ckpt.disk_loads)));
      ("misses", Json.N (sum (fun st -> st.Ckpt.misses)));
      ("invalidated", Json.N (sum (fun st -> st.Ckpt.invalidated)));
      ("transient_hits", Json.N (sum (fun st -> st.Ckpt.transient_hits)));
      ("transient_misses", Json.N (sum (fun st -> st.Ckpt.transient_misses)));
      ("transients_loaded", Json.N (sum (fun st -> st.Ckpt.transients_loaded)));
    ]
  in
  let cc = Codecache.stats t.codecache in
  let code =
    [ ("hits", Json.N (float_of_int cc.Codecache.hits));
      ("misses", Json.N (float_of_int cc.Codecache.misses));
    ]
  in
  [ ("store", Json.O (Shard_store.stat_fields s));
    ("server", Json.O server);
    ("ckpt", Json.O ckpt);
    ("codecache", Json.O code);
  ]

(* ---------------- shutdown ---------------- *)

let shutdown_fd fd = try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ()

(* Graceful stop: poke the accept loop awake through the self-pipe
   (closing the listening fd would NOT unblock a thread already parked
   in accept), then half-close every other connection for receive —
   each connection thread finishes the request it is processing, sees
   EOF on its next read, and exits.  [run] returns once the last thread
   is gone. *)
let initiate_shutdown t ~self =
  Mutex.lock t.mu;
  let first = not t.stopping in
  t.stopping <- true;
  let others =
    Hashtbl.fold (fun fd () acc -> if Some fd = self then acc else fd :: acc) t.conns []
  in
  Mutex.unlock t.mu;
  if first then begin
    logf t "shutting down";
    (try ignore (Unix.write t.wake_wr (Bytes.of_string "!") 0 1) with _ -> ());
    List.iter shutdown_fd others
  end

(* ---------------- connections ---------------- *)

let handle t ~fd (req : Proto.req) : Proto.reply =
  match req.Proto.request with
  | Proto.Tune a -> (
    match do_tune t a with
    | Ok r -> Proto.Tuned ("tune", r)
    | Error msg -> Proto.Failed msg)
  | Proto.Lookup a -> (
    match do_lookup t a with
    | Ok (Some r) -> Proto.Tuned ("lookup", r)
    | Ok None -> Proto.Miss
    | Error msg -> Proto.Failed msg)
  | Proto.Stat -> Proto.Stats (stat_fields t)
  | Proto.Compact ->
    apply_bounds t;
    Shard_store.compact t.store;
    Proto.Done "compact"
  | Proto.Shutdown ->
    initiate_shutdown t ~self:(Some fd);
    Proto.Done "shutdown"

let serve_conn t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
      Mutex.lock t.mu;
      t.n_requests <- t.n_requests + 1;
      Mutex.unlock t.mu;
      let resp, stop =
        match Proto.parse_request line with
        | Error (id, msg) ->
          Mutex.lock t.mu;
          t.n_errors <- t.n_errors + 1;
          Mutex.unlock t.mu;
          ({ Proto.resp_id = id; reply = Proto.Failed msg }, false)
        | Ok req ->
          let reply = handle t ~fd req in
          (match reply with
          | Proto.Failed _ ->
            Mutex.lock t.mu;
            t.n_errors <- t.n_errors + 1;
            Mutex.unlock t.mu
          | _ -> ());
          ( { Proto.resp_id = req.Proto.req_id; reply },
            req.Proto.request = Proto.Shutdown )
      in
      (match output_string oc (Proto.render_response resp ^ "\n") with
      | exception Sys_error _ -> ()
      | () -> ( try flush oc with Sys_error _ -> ()));
      if not stop then loop ()
  in
  (try loop () with _ -> ());
  Mutex.lock t.mu;
  Hashtbl.remove t.conns fd;
  t.active <- t.active - 1;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu;
  try Unix.close fd with _ -> ()

(* ---------------- listener ---------------- *)

let bind_listen = function
  | `Unix path ->
    if Sys.file_exists path then begin
      (* only ever remove a stale socket, never a regular file *)
      if (Unix.stat path).Unix.st_kind <> Unix.S_SOCK then
        failwith (Printf.sprintf "%s exists and is not a socket" path);
      Unix.unlink path
    end;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    fd
  | `Tcp (host, port) ->
    let addr =
      if host = "" || host = "*" then Unix.inet_addr_any
      else
        try Unix.inet_addr_of_string host
        with _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    fd

let listen_name = function
  | `Unix path -> path
  | `Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let run ?(clock = Unix.gettimeofday) ?(ready = ignore) config =
  let store =
    Shard_store.open_ ~shards:config.shards ~replica:config.replica ~clock
      config.store_dir
  in
  let pool =
    if config.jobs <= 1 then None
    else Some (Ifko_par.Par.Pool.create ~jobs:config.jobs)
  in
  let wake_rd, wake_wr = Unix.pipe () in
  let t =
    {
      cfg = config;
      store;
      pool;
      clock;
      started = clock ();
      wake_wr;
      mu = Mutex.create ();
      cv = Condition.create ();
      stopping = false;
      active = 0;
      conns = Hashtbl.create 16;
      tune_flight = Hashtbl.create 16;
      codecache = Codecache.create ();
      ckpts = Hashtbl.create 4;
      n_requests = 0;
      n_tunes = 0;
      n_tune_hits = 0;
      n_lookups = 0;
      n_errors = 0;
    }
  in
  let listen_fd = bind_listen config.listen in
  Unix.listen listen_fd 64;
  logf t "listening on %s (%d shards, jobs=%d%s)" (listen_name config.listen)
    (Shard_store.shard_count store) config.jobs
    (if config.replica then ", replica" else "");
  ready ();
  (* select-then-accept: the self-pipe makes shutdown from another
     thread reliable (no race against a parked accept), and the
     nonblocking listener makes a spurious wakeup harmless *)
  Unix.set_nonblock listen_fd;
  let stopping () =
    Mutex.lock t.mu;
    let s = t.stopping in
    Mutex.unlock t.mu;
    s
  in
  let rec accept_loop () =
    if not (stopping ()) then begin
      match Unix.select [ listen_fd; wake_rd ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception _ -> ()
      | ready_fds, _, _ ->
        if List.mem listen_fd ready_fds && not (stopping ()) then begin
          match Unix.accept listen_fd with
          | exception
              Unix.Unix_error
                ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
            -> ()
          | exception _ ->
            Mutex.lock t.mu;
            t.stopping <- true;
            Mutex.unlock t.mu
          | fd, _ ->
            (try Unix.clear_nonblock fd with _ -> ());
            Mutex.lock t.mu;
            Hashtbl.replace t.conns fd ();
            t.active <- t.active + 1;
            Mutex.unlock t.mu;
            ignore (Thread.create (fun () -> serve_conn t fd) ())
        end;
        if not (List.mem wake_rd ready_fds) then accept_loop ()
    end
  in
  accept_loop ();
  (try Unix.close listen_fd with _ -> ());
  (* accept can also exit on an unexpected error; make sure connection
     threads are told to finish either way *)
  initiate_shutdown t ~self:None;
  (try Unix.close wake_rd with _ -> ());
  (try Unix.close wake_wr with _ -> ());
  Mutex.lock t.mu;
  while t.active > 0 do
    Condition.wait t.cv t.mu
  done;
  Mutex.unlock t.mu;
  Option.iter Ifko_par.Par.Pool.shutdown pool;
  Shard_store.close store;
  (match config.listen with
  | `Unix path -> ( try Unix.unlink path with _ -> ())
  | `Tcp _ -> ());
  logf t "stopped"
