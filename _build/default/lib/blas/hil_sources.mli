(** HIL source text of the surveyed kernels.

    These are direct translations of the ANSI C reference loops of the
    paper's Table 1 into HIL (as in its Figure 6), exercising the front
    end end-to-end.  [iamax] uses the branch-out-of-line formulation of
    Figure 6(b), which is the efficient encoding absent code
    positioning transformations — and the one FKO cannot vectorize. *)

val source : Defs.kernel_id -> string
(** Concrete HIL text for the kernel. *)

val compile : Defs.kernel_id -> Ifko_codegen.Lower.compiled
(** Parse, check and lower the kernel. *)

val straightforward_iamax : Defs.kernel_id -> string
(** The scoped-if formulation of [iamax] (the ANSI C reference's
    shape), which the paper fed to icc and gcc instead of Figure 6(b).
    Only valid for the [Iamax] routine. *)

val compile_straightforward : Defs.kernel_id -> Ifko_codegen.Lower.compiled
(** Lower {!straightforward_iamax}. *)

val speculative_iamax : Defs.kernel_id -> string
(** {!straightforward_iamax} with the [SPECULATE] loop mark-up: the
    user-assisted path that lets FKO vectorize iamax (the paper's
    suggested narrow solution to its one systematic loss). *)

val compile_speculative : Defs.kernel_id -> Ifko_codegen.Lower.compiled
(** Lower {!speculative_iamax}. *)
