lib/eval/figures.ml: Buffer Defs Eval Float Hashtbl Ifko_baselines Ifko_blas Ifko_machine Ifko_search Ifko_transform Ifko_util List Option Printf Stats String Table
