(** Deterministic pseudo-random numbers (splitmix64).

    All stochastic inputs in this repository (workload vectors, property
    tests' auxiliary data) flow through this module so that every run of
    the benchmarks and tests is reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a generator from a seed.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split g] derives an independent generator; [g] advances. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val sign_float : t -> float -> float
(** [sign_float g x] is uniform in [(-x, x)], exercising both signs (the
    BLAS kernels, notably [asum] and [iamax], are sensitive to sign). *)
