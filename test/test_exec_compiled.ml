(* Differential tests of the two execution engines: the reference
   tree-walking interpreter (Exec.run_reference) against the
   decode-once threaded-code engine (Exec.compile / Exec.exec).

   The engines must be bit-identical — same return-value bits, same
   cycle count bits, same instruction/µop counts, same final memory
   image, and the same trap messages raised at the same points — on
   the full BLAS suite under both timing contexts, on every checked-in
   fuzz reproducer, and on hand-built trap cases. *)

open Ifko_blas
module Exec = Ifko_sim.Exec
module Env = Ifko_sim.Env
module Config = Ifko_machine.Config
module Memsys = Ifko_machine.Memsys

let cfg = Config.p4e
let seed = 99

(* ---------- result comparison ---------- *)

let ret_to_string = function
  | None -> "none"
  | Some (Exec.Rint v) -> Printf.sprintf "int:%d" v
  | Some (Exec.Rfp v) -> Printf.sprintf "fp:%Lx" (Int64.bits_of_float v)

(* Bit-exact on purpose: Rfp compares IEEE bit patterns (so NaN = NaN
   and -0.0 <> 0.0), cycles likewise. *)
let check_same_result what (r_ref : Exec.result) (r_new : Exec.result) =
  Alcotest.(check string)
    (what ^ ": return bits") (ret_to_string r_ref.Exec.ret) (ret_to_string r_new.Exec.ret);
  Alcotest.(check int64)
    (what ^ ": cycle bits")
    (Int64.bits_of_float r_ref.Exec.cycles)
    (Int64.bits_of_float r_new.Exec.cycles);
  Alcotest.(check int) (what ^ ": instr_count") r_ref.Exec.instr_count r_new.Exec.instr_count;
  Alcotest.(check int) (what ^ ": uop_count") r_ref.Exec.uop_count r_new.Exec.uop_count

let check_same_memory what env_ref env_new =
  Alcotest.(check bool)
    (what ^ ": final memory image identical")
    true
    (Bytes.equal (Env.mem env_ref) (Env.mem env_new))

type outcome = Finished of Exec.result | Trapped of string

let outcome_to_string = function
  | Finished r ->
    Printf.sprintf "ret=%s cycles=%Lx instrs=%d uops=%d" (ret_to_string r.Exec.ret)
      (Int64.bits_of_float r.Exec.cycles)
      r.Exec.instr_count r.Exec.uop_count
  | Trapped msg -> "trap: " ^ msg

(* Run the same function on identically-built environments through
   both engines and insist on identical observable outcomes
   (including traps, message for message). *)
let run_both ?max_instrs ?(cfg = cfg) ~timed ~ret_fsize what func mkenv =
  let timing ms = if timed then Some (cfg, ms) else None in
  let fresh_ms () =
    let ms = Memsys.create cfg in
    Memsys.reset ms ~flush:true;
    ms
  in
  let env_ref = mkenv () and env_new = mkenv () in
  let o_ref =
    try
      Finished
        (Exec.run_reference ?timing:(timing (fresh_ms ())) ?max_instrs ~ret_fsize func
           env_ref)
    with Exec.Trap m -> Trapped m
  in
  let o_new =
    try
      Finished
        (Exec.exec ?timing:(timing (fresh_ms ())) ?max_instrs ~ret_fsize
           (Exec.compile func) env_new)
    with Exec.Trap m -> Trapped m
  in
  (match (o_ref, o_new) with
  | Finished r1, Finished r2 -> check_same_result what r1 r2
  | o1, o2 ->
    Alcotest.(check string) (what ^ ": outcome") (outcome_to_string o1) (outcome_to_string o2));
  check_same_memory what env_ref env_new

(* ---------- BLAS suite: kernels x contexts x timed/untimed ---------- *)

let timed_context ?(cfg = cfg) context func spec n what =
  (* Mirror Timer.run_once exactly for each engine, with its own
     memory system. *)
  let run exec_one =
    let env = spec.Ifko_sim.Timer.make_env n in
    let ms = Memsys.create cfg in
    (match context with
    | Ifko_sim.Timer.Out_of_cache -> Memsys.reset ms ~flush:true
    | Ifko_sim.Timer.In_l2 ->
      Memsys.reset ms ~flush:true;
      Env.iter_array_lines env ~line:cfg.Config.l2.Config.line (fun addr ->
          Memsys.warm_l2 ms ~addr));
    (exec_one ms env, env)
  in
  let r_ref, env_ref =
    run (fun ms env ->
        Exec.run_reference ~timing:(cfg, ms) ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize func
          env)
  in
  let r_new, env_new =
    run (fun ms env ->
        Exec.exec ~timing:(cfg, ms) ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize
          (Exec.compile func) env)
  in
  check_same_result what r_ref r_new;
  check_same_memory what env_ref env_new

let blas_funcs id =
  let compiled = Hil_sources.compile id in
  let report = Ifko_analysis.Report.analyze compiled in
  let line_bytes = cfg.Config.prefetchable_line in
  let default = Ifko_transform.Params.default ~line_bytes report in
  let tuned_point = Ifko_search.Driver.compile_point ~cfg compiled default in
  (* A second point exercising write-no-translate stores and
     accumulator expansion; skip kernels where the pipeline rejects
     the point as illegal. *)
  let variant =
    match Ifko_transform.Params.of_canonical "sv=1;ur=4;lc=0;ae=2;wnt=1;bf=0;cisc=0;pf=" with
    | exception _ -> None
    | p -> (
      match Ifko_search.Driver.compile_point ~cfg compiled p with
      | exception _ -> None
      | f -> Some f)
  in
  (compiled.Ifko_codegen.Lower.func, tuned_point, variant)

let test_blas_equivalence () =
  List.iter
    (fun id ->
      let name = Defs.name id in
      let spec = Workload.timer_spec id ~seed in
      let reference, tuned, variant = blas_funcs id in
      let points =
        (name ^ "/ref", reference) :: ((name ^ "/tuned", tuned)
        :: (match variant with Some f -> [ (name ^ "/wnt+ae", f) ] | None -> []))
      in
      List.iter
        (fun (what, func) ->
          (* untimed, remainder-heavy size *)
          List.iter
            (fun n ->
              run_both ~timed:false ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize
                (Printf.sprintf "%s untimed n=%d" what n)
                func
                (fun () -> spec.Ifko_sim.Timer.make_env n))
            [ 0; 1; 257 ];
          (* timed, both usage contexts *)
          List.iter
            (fun (cname, context) ->
              timed_context context func spec 257
                (Printf.sprintf "%s timed %s n=257" what cname))
            [ ("oc", Ifko_sim.Timer.Out_of_cache); ("l2", Ifko_sim.Timer.In_l2) ])
        points)
    Defs.all

(* ---------- adversarial cache geometries ---------- *)

(* Geometries chosen to defeat the memory system's acceleration state:
   direct-mapped caches (the MRU way filter is the whole set, so every
   conflict evicts through it), a tiny L1 (constant capacity misses and
   eviction/writeback traffic at sizes the default geometry absorbs),
   and a 16-byte L1 line under a 128-byte L2 line (one L2 fill spans
   eight L1 lines, stressing the inclusive fill paths).  The engines
   must stay bit-identical on all of them. *)
let adversarial_cfgs =
  [ ( "assoc1",
      { Config.p4e with
        Config.name = "p4e-assoc1";
        l1 = { Config.p4e.Config.l1 with Config.assoc = 1 };
        l2 = { Config.p4e.Config.l2 with Config.assoc = 1 }
      } );
    ( "tinyL1",
      { Config.p4e with
        Config.name = "p4e-tinyL1";
        l1 = { Config.size = 1024; line = 64; assoc = 2; latency = 1 }
      } );
    ( "line16",
      { Config.p4e with
        Config.name = "p4e-line16";
        l1 = { Config.size = 4096; line = 16; assoc = 2; latency = 1 }
      } );
  ]

let test_adversarial_geometries () =
  List.iter
    (fun id ->
      let name = Defs.name id in
      let spec = Workload.timer_spec id ~seed in
      let _, tuned, _ = blas_funcs id in
      List.iter
        (fun (gname, acfg) ->
          run_both ~cfg:acfg ~timed:true ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize
            (Printf.sprintf "%s %s timed n=257" name gname)
            tuned
            (fun () -> spec.Ifko_sim.Timer.make_env 257);
          List.iter
            (fun (cname, context) ->
              timed_context ~cfg:acfg context tuned spec 257
                (Printf.sprintf "%s %s timed %s n=257" name gname cname))
            [ ("oc", Ifko_sim.Timer.Out_of_cache); ("l2", Ifko_sim.Timer.In_l2) ])
        adversarial_cfgs)
    [ { Defs.routine = Defs.Axpy; prec = Instr.D };
      { Defs.routine = Defs.Copy; prec = Instr.S };
      { Defs.routine = Defs.Iamax; prec = Instr.D };
    ]

(* ---------- memory-system reset and reuse ---------- *)

(* Timer/Driver reuse one memory system across thousands of probes
   (Memsys.reset per repetition), so a reused instance must be
   bit-identical to a fresh one — including after churn has populated
   the MRU filters, the touched-way logs and the in-flight table. *)
let test_reset_reuse_identity () =
  let id = { Defs.routine = Defs.Axpy; prec = Instr.D } in
  let spec = Workload.timer_spec id ~seed in
  let _, tuned, _ = blas_funcs id in
  let cf = Exec.compile tuned in
  let rfs = spec.Ifko_sim.Timer.ret_fsize in
  let run ms n =
    let env = spec.Ifko_sim.Timer.make_env n in
    Memsys.reset ms ~flush:true;
    (Exec.exec ~timing:(cfg, ms) ~ret_fsize:rfs cf env, env)
  in
  let ms = Memsys.create cfg in
  let r_fresh, env_fresh = run ms 257 in
  (* churn: different problem size, then an In_l2-style warm, leaving
     in-flight fills, touched ways and MRU hints populated *)
  let (_ : Exec.result * Env.t) = run ms 130 in
  Env.iter_array_lines (spec.Ifko_sim.Timer.make_env 130) ~line:cfg.Config.l2.Config.line
    (fun addr -> Memsys.warm_l2 ms ~addr);
  let r_reused, env_reused = run ms 257 in
  check_same_result "reused memsys after churn" r_fresh r_reused;
  check_same_memory "reused memsys after churn" env_fresh env_reused

(* reset ~flush:false keeps cache contents (the warm-cache episodes the
   context-adaptation example runs): both engines must agree under the
   same reuse pattern, and the warm second episode must not be slower
   than the cold first. *)
let test_reset_noflush_episodes () =
  let id = { Defs.routine = Defs.Dot; prec = Instr.D } in
  let spec = Workload.timer_spec id ~seed in
  let _, tuned, _ = blas_funcs id in
  let cf = Exec.compile tuned in
  let rfs = spec.Ifko_sim.Timer.ret_fsize in
  let episodes exec_one =
    let ms = Memsys.create cfg in
    Memsys.reset ms ~flush:true;
    let cold = exec_one ms (spec.Ifko_sim.Timer.make_env 130) in
    Memsys.reset ms ~flush:false;
    let warm = exec_one ms (spec.Ifko_sim.Timer.make_env 130) in
    (cold, warm)
  in
  let w_cold, w_warm =
    episodes (fun ms env -> Exec.run_reference ~timing:(cfg, ms) ~ret_fsize:rfs tuned env)
  in
  let t_cold, t_warm = episodes (fun ms env -> Exec.exec ~timing:(cfg, ms) ~ret_fsize:rfs cf env) in
  check_same_result "cold episode" w_cold t_cold;
  check_same_result "warm episode" w_warm t_warm;
  Alcotest.(check bool) "warm episode is no slower" true
    (t_warm.Exec.cycles <= t_cold.Exec.cycles)

(* ---------- fuzz-corpus replay through both engines ---------- *)

let corpus_cases =
  List.map
    (fun path ->
      Alcotest.test_case ("corpus " ^ Filename.basename path) `Quick (fun () ->
          let case = Ifko_fuzz.Corpus.read path in
          let compiled = Ifko_fuzz.Fuzz.compile case.Ifko_fuzz.Corpus.kernel in
          let rfs =
            match compiled.Ifko_codegen.Lower.arrays with
            | a :: _ -> a.Ifko_codegen.Lower.a_elem
            | [] -> Instr.D
          in
          let funcs =
            ("ref", compiled.Ifko_codegen.Lower.func)
            ::
            (match
               Ifko_transform.Pipeline.apply ~line_bytes:cfg.Config.prefetchable_line
                 compiled case.Ifko_fuzz.Corpus.params
             with
            | exception _ -> []
            | opt -> [ ("opt", opt.Ifko_codegen.Lower.func) ])
          in
          List.iter
            (fun (what, func) ->
              List.iter
                (fun n ->
                  let mkenv () = Ifko_fuzz.Oracle.make_env ~seed compiled n in
                  run_both ~timed:false ~ret_fsize:rfs
                    (Printf.sprintf "%s %s untimed n=%d" (Filename.basename path) what n)
                    func mkenv;
                  run_both ~timed:true ~ret_fsize:rfs
                    (Printf.sprintf "%s %s timed n=%d" (Filename.basename path) what n)
                    func mkenv;
                  (* replay under an adversarial geometry too: corpus
                     kernels are the pipeline's known hard cases, so
                     they make the best probes of the fast-path guards *)
                  run_both
                    ~cfg:(List.assoc "tinyL1" adversarial_cfgs)
                    ~timed:true ~ret_fsize:rfs
                    (Printf.sprintf "%s %s timed tinyL1 n=%d" (Filename.basename path) what
                       n)
                    func mkenv)
                Ifko_fuzz.Oracle.default_sizes)
            funcs))
    (Ifko_fuzz.Corpus.files ~dir:"corpus")

(* ---------- trap parity on hand-built CFGs ---------- *)

let gpr i = Reg.virt Reg.Gpr i
let xmm i = Reg.virt Reg.Xmm i
let mem ?(disp = 0) ?index ?(scale = 1) base = Instr.mk_mem ?index ~scale ~disp base

let one_block ?(label = "entry") ?(term = Block.Ret None) instrs =
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <- [ Block.make label ~instrs ~term ];
  f

let test_trap_parity () =
  let t what ?max_instrs f =
    run_both ?max_instrs ~timed:false ~ret_fsize:Instr.D what f (fun () -> Env.create ())
  in
  (* instruction budget, checked before each instruction *)
  let loop = Cfg.create ~name:"t" ~params:[] in
  loop.Cfg.blocks <-
    [ Block.make "entry" ~instrs:[ Instr.Ildi (gpr 0, 0) ] ~term:(Block.Jmp "entry") ];
  t "budget" ~max_instrs:10 loop;
  (* jump to a missing label *)
  t "unknown label" (one_block ~term:(Block.Jmp "nope") []);
  (* unaligned vector load/store/operand (in range) *)
  t "unaligned vload"
    (one_block [ Instr.Ildi (gpr 0, 8); Instr.Vld (Instr.D, xmm 0, mem (gpr 0)) ]);
  t "unaligned vstore"
    (one_block [ Instr.Ildi (gpr 0, 24); Instr.Vst (Instr.D, mem (gpr 0), xmm 0) ]);
  t "unaligned voperand"
    (one_block
       [ Instr.Ildi (gpr 0, 8);
         Instr.Vopm (Instr.D, Instr.Fadd, xmm 1, xmm 0, mem (gpr 0)) ]);
  (* out-of-range scalar and vector accesses *)
  t "oob load" (one_block [ Instr.Ildi (gpr 0, -16); Instr.Ild (gpr 1, mem (gpr 0)) ]);
  t "oob vload"
    (one_block [ Instr.Ildi (gpr 0, 1 lsl 30); Instr.Vld (Instr.D, xmm 0, mem (gpr 0)) ]);
  (* missing parameter binding *)
  let p = Cfg.create ~name:"t" ~params:[ ("N", gpr 0) ] in
  p.Cfg.blocks <- [ Block.make "entry" ~instrs:[] ~term:(Block.Ret None) ];
  t "missing binding" p

(* Satellite fix: an address that is both out of range and unaligned
   must report the bounds trap on every vector op — Vopm used to check
   alignment first. *)
let test_vector_trap_order () =
  let addr = (1 lsl 30) + 8 in
  let msg_of f =
    match Exec.run f (Env.create ()) with
    | exception Exec.Trap m -> m
    | _ -> Alcotest.fail "expected a trap"
  in
  let expected = Printf.sprintf "memory access out of range: addr=%d size=16" addr in
  List.iter
    (fun (what, instr) ->
      Alcotest.(check string) (what ^ " traps on range first") expected
        (msg_of (one_block [ Instr.Ildi (gpr 0, addr); instr ])))
    [ ("vld", Instr.Vld (Instr.D, xmm 0, mem (gpr 0)));
      ("vst", Instr.Vst (Instr.D, mem (gpr 0), xmm 0));
      ("vopm", Instr.Vopm (Instr.D, Instr.Fadd, xmm 1, xmm 0, mem (gpr 0)))
    ];
  (* in range and unaligned still reports the per-op message *)
  (match
     Exec.run
       (one_block
          [ Instr.Ildi (gpr 0, 8); Instr.Vopm (Instr.D, Instr.Fadd, xmm 1, xmm 0, mem (gpr 0)) ])
       (Env.create ())
   with
  | exception Exec.Trap m ->
    Alcotest.(check string) "vopm unaligned message" "unaligned vector operand at 8" m
  | _ -> Alcotest.fail "expected a trap")

(* A branch to a missing block only traps when taken: decode must not
   reject the function eagerly. *)
let test_lazy_label_resolution () =
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <-
    [ Block.make "entry"
        ~instrs:[ Instr.Ildi (gpr 0, 1) ]
        ~term:
          (Block.Br
             {
               cmp = Instr.Eq;
               lhs = gpr 0;
               rhs = Instr.Oimm 0;
               ifso = "missing";
               ifnot = "done";
               dec = 0;
             });
      Block.make "done" ~instrs:[] ~term:(Block.Ret (Some (gpr 0)))
    ];
  (match (Exec.exec (Exec.compile f) (Env.create ())).Exec.ret with
  | Some (Exec.Rint 1) -> ()
  | r -> Alcotest.failf "expected Rint 1, got %s" (ret_to_string r));
  run_both ~timed:true ~ret_fsize:Instr.D "never-taken missing target" f (fun () ->
      Env.create ())

(* Branch-predictor parity: a data-dependent alternating branch makes
   mispredictions depend on per-block predictor state. *)
let test_predictor_parity () =
  let f = Cfg.create ~name:"t" ~params:[] in
  f.Cfg.blocks <-
    [ Block.make "entry"
        ~instrs:[ Instr.Ildi (gpr 0, 64); Instr.Ildi (gpr 1, 0); Instr.Ildi (gpr 2, 0) ]
        ~term:(Block.Jmp "loop");
      Block.make "loop"
        ~instrs:[ Instr.Iop (Instr.Iand, gpr 3, gpr 0, Instr.Oimm 1) ]
        ~term:
          (Block.Br
             {
               cmp = Instr.Eq;
               lhs = gpr 3;
               rhs = Instr.Oimm 0;
               ifso = "even";
               ifnot = "odd";
               dec = 0;
             });
      Block.make "even"
        ~instrs:[ Instr.Iop (Instr.Iadd, gpr 1, gpr 1, Instr.Oimm 1) ]
        ~term:(Block.Jmp "tail");
      Block.make "odd"
        ~instrs:[ Instr.Iop (Instr.Iadd, gpr 2, gpr 2, Instr.Oimm 1) ]
        ~term:(Block.Jmp "tail");
      Block.make "tail" ~instrs:[]
        ~term:
          (Block.Br
             {
               cmp = Instr.Gt;
               lhs = gpr 0;
               rhs = Instr.Oimm 0;
               ifso = "loop";
               ifnot = "done";
               dec = 1;
             });
      Block.make "done" ~instrs:[] ~term:(Block.Ret (Some (gpr 1)))
    ];
  run_both ~timed:true ~ret_fsize:Instr.D "alternating branch" f (fun () -> Env.create ())

let suite =
  [ Alcotest.test_case "BLAS kernels bit-identical" `Quick test_blas_equivalence;
    Alcotest.test_case "adversarial cache geometries" `Quick test_adversarial_geometries;
    Alcotest.test_case "reset-reuse bit-identity" `Quick test_reset_reuse_identity;
    Alcotest.test_case "reset without flush episodes" `Quick test_reset_noflush_episodes;
    Alcotest.test_case "trap parity" `Quick test_trap_parity;
    Alcotest.test_case "vector trap order unified" `Quick test_vector_trap_order;
    Alcotest.test_case "lazy label resolution" `Quick test_lazy_label_resolution;
    Alcotest.test_case "branch predictor parity" `Quick test_predictor_parity
  ]
  @ corpus_cases
