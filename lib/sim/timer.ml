open Ifko_machine

type context = Out_of_cache | In_l2

let context_name = function Out_of_cache -> "out-of-cache" | In_l2 -> "in-L2"

type spec = { make_env : int -> Env.t; ret_fsize : Instr.fsize }

type fidelity = Full | Sampled

let fidelity_name = function Full -> "full" | Sampled -> "sampled"

let fidelity_of_string = function
  | "full" -> Some Full
  | "sampled" -> Some Sampled
  | _ -> None

type measurement = {
  m_cycles : float;
  m_fidelity : fidelity;  (** the fidelity that actually produced the cycles *)
  m_fallback : string option;
      (** why a [Sampled] request fell back to full fidelity, if it did *)
  m_elems : int;  (** elements simulated per repetition (the work proxy) *)
}

(* Setup-vs-simulate wall-time attribution.  The sampled fidelity's
   value proposition is wall-clock per measurement, and its budget is
   dominated by fixed setup (machine acquire, environment materialize,
   warm-state restore) rather than simulation — this instrument makes
   that split visible in `bench --profile` / `ifko sim --profile` so a
   floor regression shows up as numbers, not vibes.  Off by default:
   when disabled the clock reads are skipped entirely.  Accumulation is
   mutex-guarded (measurements run concurrently on the probe pool). *)
type attribution = {
  at_arena_s : float;  (** acquiring/releasing pooled machines *)
  at_env_s : float;  (** building, materializing and scrubbing environments *)
  at_restore_s : float;  (** snapshot capture/restore and warm-state plumbing *)
  at_exec_s : float;  (** inside [Exec.exec] — the actual simulation *)
  at_measures : int;  (** measurements attributed *)
}

let attribution_zero =
  { at_arena_s = 0.0; at_env_s = 0.0; at_restore_s = 0.0; at_exec_s = 0.0; at_measures = 0 }

let prof_on = ref false
let prof_mutex = Mutex.create ()
let prof_acc = ref attribution_zero

let profile_enable b = prof_on := b

let profile_reset () =
  Mutex.lock prof_mutex;
  prof_acc := attribution_zero;
  Mutex.unlock prof_mutex

let profile () =
  Mutex.lock prof_mutex;
  let v = !prof_acc in
  Mutex.unlock prof_mutex;
  v

let[@inline] clk () = if !prof_on then Unix.gettimeofday () else 0.0

let prof_add ~arena ~env ~restore ~exec =
  if !prof_on then begin
    Mutex.lock prof_mutex;
    let a = !prof_acc in
    prof_acc :=
      {
        at_arena_s = a.at_arena_s +. arena;
        at_env_s = a.at_env_s +. env;
        at_restore_s = a.at_restore_s +. restore;
        at_exec_s = a.at_exec_s +. exec;
        at_measures = a.at_measures + 1;
      };
    Mutex.unlock prof_mutex
  end

(* One simulation of pre-decoded code: the kernel is compiled once per
   candidate (by [measure]/[exact]) and reused across contexts, sample
   sizes and reps.  The machine is borrowed from the geometry-keyed
   arena pool (and put into a known state by the reset/restore below —
   the pool's contract) and the environment's backing buffer comes
   from the zeroed-buffer pool; both are bit-identical to fresh
   construction.  With [ckpt], the in-L2 warm-up state is restored
   from (or captured into) the checkpoint cache instead of re-running
   the warm loop — observably identical either way. *)
let run_once ?ckpt ~cfg ~context ~spec ~n cf =
  let t0 = clk () in
  let env = spec.make_env n in
  let t1 = clk () in
  let ms = Arena.acquire cfg in
  let t2 = clk () in
  let cleanup () =
    Arena.release ms;
    Env.release env
  in
  match
    (match context with
    | Out_of_cache ->
      (* The flushed-cache state IS the out-of-cache checkpoint: there
         is nothing cheaper to restore, so [ckpt] is not consulted. *)
      Memsys.reset ms ~flush:true
    | In_l2 ->
      let warm ms =
        Memsys.reset ms ~flush:true;
        Env.iter_array_lines env ~line:cfg.Config.l2.Config.line (fun addr ->
            Memsys.warm_l2 ms ~addr);
        0.0
      in
      (match ckpt with
      | None -> ignore (warm ms)
      | Some (c, kernel) ->
        let key = Ckpt.key c ~kernel ~context:(context_name In_l2) ~n in
        ignore (Ckpt.with_state c ~key ms ~warm : float)));
    let t3 = clk () in
    let result = Exec.exec ~timing:(cfg, ms) ~ret_fsize:spec.ret_fsize cf env in
    let t4 = clk () in
    let cycles =
      match context with
      | Out_of_cache -> result.Exec.cycles +. Memsys.pending_writeback_cost ms
      | In_l2 -> result.Exec.cycles
    in
    (t3, t4, cycles)
  with
  | exception e ->
    cleanup ();
    raise e
  | t3, t4, cycles ->
    cleanup ();
    let t5 = clk () in
    prof_add ~arena:(t2 -. t1) ~env:(t1 -. t0 +. (t5 -. t4)) ~restore:(t3 -. t2)
      ~exec:(t4 -. t3);
    cycles

let exact ~cfg ~context ~spec ~n func = run_once ~cfg ~context ~spec ~n (Exec.compile func)

(* Problem sizes for the steady-state extrapolation: multiples of the
   number of elements in a 4 KiB page for either precision, so page
   effects (hardware-prefetcher retraining) appear in both samples at
   the same per-element rate. *)
let sample_lo = 4096
let sample_hi = 8192

(* Sampled fidelity simulates short windows instead of the full
   extrapolation pair:

     - a {e warm-up} window of [sampled_warm_pages] pages, which drives
       the memory system to steady state (trained prefetch streams,
       saturated bus backlog, populated MSHRs) — run once per (kernel,
       machine, context) and shared across every probe point and every
       problem size through the [Ckpt] cache;
     - {e detailed} windows that continue the warm-up as one long run
       (restore + [Memsys.rebase] + [Env.advance]) and yield the steady
       per-element rate;
     - a {e cold} window of one page, anchoring the candidate's own
       start-up intercept (prologue, cold-start latencies).

   A resumed window restarts with an empty CPU pipeline — and, when
   the warm state was created by a *different* candidate (probe points
   of one tune share the warm-up), without this candidate's own
   prefetch streams in flight — so its raw cycles overshoot the steady
   rate by a code-dependent resume transient.  The transient is
   cancelled exactly the way the full path cancels cold-start cost:
   two resumed windows of [sampled_win_pages] and [sampled_rate_pages]
   pages restart from the *same* restored state running the *same*
   code, so their prefixes are cycle-identical (the simulator is
   deterministic) and the difference [c2 - c1] prices exactly the
   trailing [sampled_rate_pages - sampled_win_pages] pages at the
   candidate's own steady rate — whatever state it resumed from and
   whoever created that state.  The short window's excess over that
   rate, [tr = c1 - rate * n_win], is the transient; it is memoized
   per (warm state, code digest) in the [Ckpt], so later measurements
   of the same candidate (reps, other problem sizes) need only the
   short window: [c_win = c1' - tr].  At the memoized values this
   equals the miss path's [c1 - tr] bit-for-bit.

   All windows are measured in pages of the kernel's widest array
   element, so every window is a whole-page multiple for every array
   (element sizes are powers of two), and the rate span is an even
   page count so period-two page alternation (write-allocate phase
   effects) averages out; the span is several pages long because the
   steady rate itself has page-scale structure (prefetch retraining at
   every page crossing) that a short span samples too coarsely.  The
   estimate is [c_cold + rate * (n - lo)].  Per-probe simulated work
   against [sample_lo + sample_hi] for the full path: [lo + n_win]
   elements once the candidate's transient is known,
   [lo + n_win + n_rate] the first time a candidate is seen, plus the
   warm-up when the snapshot itself is fresh — [m_elems] reports what
   each call actually ran. *)
let page_bytes = 4096
let sampled_warm_pages = 5
let sampled_win_pages = 2
let sampled_rate_pages = 10

(* (elements per page of the widest array element, bytes of array data
   per element) — the sampled path's whole dependence on the kernel's
   operand shapes, derivable from any tiny environment.  Costs an env
   build, so the per-kernel result is memoized in the checkpoint cache
   when one is available. *)
let sampled_geometry_raw spec =
  let env = spec.make_env 8 in
  let g =
    List.fold_left
      (fun (pe, bpe) (_, b) ->
        match b with
        | Env.Array_arg { fsize; _ } ->
          (max pe (page_bytes / Instr.fsize_bytes fsize), bpe + Instr.fsize_bytes fsize)
        | _ -> (pe, bpe))
      (0, 0) (Env.bindings env)
  in
  Env.release env;
  g

let sampled_geometry ?ckpt spec =
  match ckpt with
  | Some (c, kernel) ->
    let packed =
      Ckpt.int_memo c
        ~key:("sampled-geometry:" ^ kernel)
        (fun () ->
          let pe, bpe = sampled_geometry_raw spec in
          (* pe <= page_bytes, bpe a few dozen bytes: both fit a pack *)
          (pe lsl 20) lor bpe)
    in
    (packed lsr 20, packed land ((1 lsl 20) - 1))
  | None -> sampled_geometry_raw spec

let sampled_window_lo spec = fst (sampled_geometry_raw spec)

(* The warm-state key is independent of the target [n]: the window
   layout depends only on the kernel's page geometry, so one warm-up
   serves every probe point and every problem size of a tune.  The
   context string distinguishes the out-of-cache scheme from the
   cache-resident in-L2 scheme — their warm states are different
   objects. *)
let sampled_ckpt_context ~context ~n_warm ~n_rate =
  match context with
  | Out_of_cache -> Printf.sprintf "out-of-cache-sampled:warm=%d:rate=%d" n_warm n_rate
  | In_l2 -> Printf.sprintf "in-l2-sampled:warm=%d:rate=%d" n_warm n_rate

let measure_ext ?(reps = 1) ?(fidelity = Full) ?ckpt ~cfg ~context ~spec ~n cf =
  let once n = run_once ?ckpt ~cfg ~context ~spec ~n cf in
  let full_rep () =
    match context with
    | In_l2 -> (once n, n)
    | Out_of_cache ->
      if n <= sample_hi then (once n, n)
      else begin
        let c_lo = once sample_lo and c_hi = once sample_hi in
        let rate = (c_hi -. c_lo) /. float_of_int (sample_hi - sample_lo) in
        (c_hi +. (rate *. float_of_int (n - sample_hi)), sample_lo + sample_hi)
      end
  in
  let full ?fallback () =
    let c0, elems = full_rep () in
    let rec repeat best k =
      if k = 0 then best else repeat (Float.min best (fst (full_rep ()))) (k - 1)
    in
    {
      m_cycles = repeat c0 (max 0 (reps - 1));
      m_fidelity = Full;
      m_fallback = fallback;
      m_elems = elems;
    }
  in
  match fidelity with
  | Full -> full ()
  | Sampled -> (
    let pe, bytes_per_elem = sampled_geometry ?ckpt spec in
    let lo = pe in
    let n_warm = sampled_warm_pages * pe in
    let n_win = sampled_win_pages * pe in
    let n_rate = sampled_rate_pages * pe in
    (* Confidence checks — the bit-identity escape hatch.  Any failure
       means the steady-state model is not trustworthy for this
       measurement, and it silently reverts to full fidelity with the
       reason recorded.  The in-L2 context is served by the
       cache-resident window scheme below as long as the full working
       set actually fits in L2 — beyond that the "in-L2" full
       measurement is itself a capacity-thrashing run that the
       steady-hit window cannot represent, so it falls back. *)
    let span = n_warm + n_rate in
    if pe <= 0 then full ~fallback:"no-array-arguments" ()
    else if n < 2 * span then full ~fallback:"tiny-n" ()
    else if context = In_l2 && n * bytes_per_elem > cfg.Config.l2.Config.size then
      full ~fallback:"in-l2-context" ()
    else begin
      let l2_line = cfg.Config.l2.Config.line in
      (* Every environment spans warm-up + the longest window so the
         arrays sit at identical addresses in all of them — the warm
         state's tags line up with the windows, and the two windows
         share a cycle-identical prefix.  The spec's env is built once
         and captured as a pristine master (per (kernel, size), shared
         through the checkpoint cache when one is available); each use
         below materializes a copy into a pooled zeroed buffer, which
         is byte-identical to rebuilding — [Env.advance] consumes a
         copy, and the warm-up mutates its own copy's output arrays.
         Everything (including the no-ckpt path) goes through masters
         so per-copy binding-table iteration order is identical in all
         of them — the in-L2 warm loop's install order depends on
         it. *)
      let build_master m_n () =
        let e = spec.make_env m_n in
        let m = Env.capture e in
        Env.release e;
        m
      in
      let masters =
        lazy
          (match ckpt with
          | Some (c, kernel) ->
            ( Ckpt.master_memo c
                ~key:(Printf.sprintf "master:%s:%d" kernel lo)
                (build_master lo),
              Ckpt.master_memo c
                ~key:(Printf.sprintf "master:%s:%d" kernel span)
                (build_master span) )
          | None -> (build_master lo (), build_master span ()))
      in
      (* The transient memo is keyed by the warm state and the
         candidate's compiled code — NOT by n, so it serves every
         problem size of a tune, like the snapshot itself. *)
      let snap_key c kernel =
        Ckpt.key c ~kernel ~context:(sampled_ckpt_context ~context ~n_warm ~n_rate) ~n:span
      in
      let code_digest = Exec.digest cf in
      let sampled_rep () =
        let master_lo, master_span = Lazy.force masters in
        (* per-rep wall-time attribution, folded into the global
           accumulator once at the end *)
        let a_arena = ref 0.0
        and a_env = ref 0.0
        and a_restore = ref 0.0
        and a_exec = ref 0.0 in
        let t0 = clk () in
        (* one borrowed memory system serves every window: the cold
           window runs on the flushed state (exactly [run_once]'s
           setup), then the warm state is restored over it *)
        let ms = Arena.acquire cfg in
        a_arena := clk () -. t0;
        let materialize m =
          let t = clk () in
          let e = Env.materialize m in
          a_env := !a_env +. (clk () -. t);
          e
        in
        let release e =
          let t = clk () in
          Env.release e;
          a_env := !a_env +. (clk () -. t)
        in
        let exec_in env =
          let t = clk () in
          let r = Exec.exec ~timing:(cfg, ms) ~ret_fsize:spec.ret_fsize cf env in
          a_exec := !a_exec +. (clk () -. t);
          r
        in
        (* A resumed window continues the warm state; the restored
           state carries the warm-up's dirty lines, so the out-of-cache
           scheme charges the window only for the writeback debt it
           adds.  The in-L2 scheme uses raw cycles like the in-L2 full
           path (which never charges writebacks: the working set stays
           resident). *)
        let window ms ~elems =
          let env = materialize master_span in
          Env.advance env ~elems:n_warm;
          Env.set_counts env elems;
          let c =
            match context with
            | Out_of_cache ->
              let wb0 = Memsys.pending_writeback_cost ms in
              let r = exec_in env in
              r.Exec.cycles +. Memsys.pending_writeback_cost ms -. wb0
            | In_l2 ->
              let r = exec_in env in
              r.Exec.cycles
          in
          release env;
          c
        in
        (* Warm-up: drive the memory system to the scheme's steady
           state.  Out-of-cache: run [n_warm] elements from a flushed
           state (trained prefetch streams, saturated bus).  In-L2:
           install the span environment's lines first — the window's
           working set is then resident, exactly as the full in-L2
           path's whole working set is — and run [n_warm] elements on
           top for pipeline/stream steady state. *)
        let warm ms =
          let wenv = materialize master_span in
          Env.set_counts wenv n_warm;
          Memsys.reset ms ~flush:true;
          (match context with
          | Out_of_cache -> ()
          | In_l2 ->
            Env.iter_array_lines wenv ~line:l2_line (fun addr -> Memsys.warm_l2 ms ~addr));
          ignore (exec_in wenv);
          Memsys.rebase ms;
          release wenv;
          0.0
        in
        let body () =
          let elems = ref lo in
          (* Cold intercept window: the candidate's own first page,
             under the scheme's own cold state (flushed caches
             out-of-cache; resident lines but cold pipeline in-L2). *)
          let c_cold =
            let env = materialize master_lo in
            Memsys.reset ms ~flush:true;
            (match context with
            | Out_of_cache -> ()
            | In_l2 ->
              Env.iter_array_lines env ~line:l2_line (fun addr -> Memsys.warm_l2 ms ~addr));
            let c =
              match context with
              | Out_of_cache ->
                let r = exec_in env in
                r.Exec.cycles +. Memsys.pending_writeback_cost ms
              | In_l2 -> (exec_in env).Exec.cycles
            in
            release env;
            c
          in
          let t = clk () in
          let sub0 = !a_exec +. !a_env in
          (match ckpt with
          | None ->
            ignore (warm ms : float);
            elems := !elems + n_warm
          | Some (c, kernel) ->
            let before = (Ckpt.stats c).Ckpt.misses in
            ignore (Ckpt.with_state c ~key:(snap_key c kernel) ms ~warm : float);
            if (Ckpt.stats c).Ckpt.misses > before then elems := !elems + n_warm);
          (* the warm closure's own exec/env time is already counted in
             those buckets; keep only the remainder as restore time *)
          a_restore := !a_restore +. (clk () -. t) -. (!a_exec +. !a_env -. sub0);
          let transient =
            match ckpt with
            | Some (c, kernel) ->
              Ckpt.find_transient c ~key:(snap_key c kernel ^ ":" ^ code_digest)
            | None -> None
          in
          let c_win =
            match transient with
            | Some tr ->
              elems := !elems + n_win;
              window ms ~elems:n_win -. tr
            | None ->
              (* First sight of this candidate over this warm state:
                 run the short window and the longer rate window from
                 private copies of it.  Their shared prefix cancels in
                 [c2 - c1], leaving the steady rate over
                 [n_rate - n_win] elements; the transient is whatever
                 the short window cost beyond that rate. *)
              let ts = clk () in
              let s = Memsys.snapshot ms in
              a_restore := !a_restore +. (clk () -. ts);
              let c1 = window ms ~elems:n_win in
              let ts = clk () in
              Memsys.restore ms s;
              a_restore := !a_restore +. (clk () -. ts);
              let c2 = window ms ~elems:n_rate in
              elems := !elems + n_win + n_rate;
              let rate = (c2 -. c1) /. float_of_int (n_rate - n_win) in
              let tr = c1 -. (rate *. float_of_int n_win) in
              (match ckpt with
              | Some (c, kernel) ->
                Ckpt.set_transient c
                  ~key:(snap_key c kernel ^ ":" ^ code_digest)
                  tr
              | None -> ());
              (* computed as [c1 - tr] — not [rate * n_win] — so the
                 hit path's float arithmetic reproduces it
                 bit-for-bit *)
              c1 -. tr
          in
          if not (c_cold > 0.0 && c_win > 0.0) then Error "non-increasing-cycles"
          else begin
            let rate = c_win /. float_of_int n_win in
            (* The steady rate and the cold first page agree within a
               small factor for anything the linear model can
               represent: the cold page adds start-up cost, while a
               saturated steady state can out-cost an idle-bus cold
               page by a bounded margin.  Outside that band the window
               did not measure the regime the kernel actually runs
               in. *)
            let q = rate *. float_of_int lo /. c_cold in
            if q < 0.3 || q > 2.5 then Error "no-steady-state"
            else Ok (c_cold +. (rate *. float_of_int (n - lo)), !elems)
          end
        in
        match body () with
        | exception e ->
          Arena.release ms;
          raise e
        | v ->
          let t = clk () in
          Arena.release ms;
          a_arena := !a_arena +. (clk () -. t);
          prof_add ~arena:!a_arena ~env:!a_env ~restore:!a_restore ~exec:!a_exec;
          v
      in
      match sampled_rep () with
      | Error reason -> full ~fallback:reason ()
      | Ok (c0, e0) -> (
        let rec repeat best k =
          if k = 0 then Ok best
          else
            match sampled_rep () with
            | Error _ as e -> e
            | Ok (c, _) -> repeat (Float.min best c) (k - 1)
        in
        match repeat c0 (max 0 (reps - 1)) with
        | Error reason -> full ~fallback:reason ()
        | Ok c -> { m_cycles = c; m_fidelity = Sampled; m_fallback = None; m_elems = e0 })
    end)

let measure_compiled ?reps ?fidelity ?ckpt ~cfg ~context ~spec ~n cf =
  (measure_ext ?reps ?fidelity ?ckpt ~cfg ~context ~spec ~n cf).m_cycles

let measure ?reps ?fidelity ?ckpt ~cfg ~context ~spec ~n func =
  measure_compiled ?reps ?fidelity ?ckpt ~cfg ~context ~spec ~n (Exec.compile func)

let mflops ~cfg ~flops_per_n ~n ~cycles =
  Ifko_util.Stats.mflops
    ~flops:(flops_per_n *. float_of_int n)
    ~cycles ~ghz:cfg.Config.ghz
