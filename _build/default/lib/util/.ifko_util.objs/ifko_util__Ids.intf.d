lib/util/ids.mli:
