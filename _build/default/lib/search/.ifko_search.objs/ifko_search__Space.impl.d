lib/search/space.ml: Config Ifko_analysis Ifko_machine Instr List
