(** The `ifko serve` wire protocol.

    Newline-delimited JSON: the client writes one flat request object
    per line, the daemon answers with one flat response object per line
    (requests on one connection are answered in order), correlated by
    the client-chosen [id].  Five ops:

    - [tune]: full empirical tune of a HIL kernel; answered from the
      service-level result cache when possible ([hit] says which).
    - [lookup]: result-cache query only — never computes.
    - [stat]: shard-aware store + server statistics as a JSON object.
    - [compact]: apply the eviction policy and compact every shard.
    - [shutdown]: stop the daemon gracefully.

    Floats travel as [%.17g] (see {!Ifko_store.Store.Json.number}), so
    a tune result served over the wire is bit-identical to the locally
    computed one — the store's determinism guarantee survives the
    protocol boundary. *)

module Json = Ifko_store.Store.Json

type tune_args = {
  kernel : string;  (** HIL source text *)
  machine : string;  (** "p4e" | "opteron" *)
  context : string;  (** "oc" | "l2" *)
  n : int;  (** problem size, > 0 *)
  seed : int;  (** workload seed (part of every store key) *)
  flops_per_n : float;  (** FLOPs per element for MFLOPS reporting *)
  check : bool;  (** per-pass validation of every probe *)
  strategy : string;  (** "linesearch" (default) | "surrogate" *)
  warm_start : bool;
      (** seed the search from the nearest past tunes in the daemon's
          store (changes the probe path, never correctness) *)
}

val default_args : kernel:string -> tune_args
(** p4e, out-of-cache, n = 80000, seed 0, 2 flops per element, no
    per-pass checking, linesearch strategy, no warm start — the
    wire-format defaults for omitted fields, so pre-strategy clients
    keep working unchanged. *)

type request =
  | Tune of tune_args
  | Lookup of tune_args
  | Stat
  | Compact
  | Shutdown

type req = { req_id : string; request : request }

type tune_reply = {
  best : string;  (** canonical parameter point *)
  mflops : float;  (** the tuned point *)
  fko_mflops : float;  (** the default (un-searched) point *)
  evaluations : int;
  hit : bool;  (** answered from the service-level result cache *)
}

type reply =
  | Tuned of string * tune_reply  (** op ("tune"/"lookup") and payload *)
  | Miss  (** lookup found nothing *)
  | Stats of (string * Json.value) list
  | Done of string  (** ack, echoing the op *)
  | Failed of string

type resp = { resp_id : string; reply : reply }

val render_request : req -> string
(** One line, no trailing newline. *)

val render_response : resp -> string

val parse_request : string -> (req, string * string) result
(** [Error (id, msg)] on malformed input — [id] is the request id when
    one could still be extracted (so the error reply stays
    correlatable), [""] otherwise.  Never raises. *)

val parse_response : string -> (resp, string) result
(** Never raises. *)
