open Defs

let prec_name = function Instr.S -> "single" | Instr.D -> "double"

module Str_replace = struct
  (* replace the first occurrence of [pat] in [s] with [rep] *)
  let first s pat rep =
    let np = String.length pat and ns = String.length s in
    let rec find i = if i + np > ns then None
      else if String.sub s i np = pat then Some i else find (i + 1) in
    match find 0 with
    | None -> s
    | Some i -> String.sub s 0 i ^ rep ^ String.sub s (i + np) (ns - i - np)
end

let source ({ routine; prec } as id) =
  let p = prec_name prec in
  let n = name id in
  match routine with
  | Swap ->
    Printf.sprintf
      {|KERNEL %s(N : int, X : ptr %s OUTPUT, Y : ptr %s OUTPUT)
VARS
  tmp, x : %s;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    tmp = Y[0];
    x = X[0];
    Y[0] = x;
    X[0] = tmp;
    X += 1;
    Y += 1;
  LOOP_END
END
|}
      n p p p
  | Scal ->
    Printf.sprintf
      {|KERNEL %s(N : int, alpha : %s, X : ptr %s OUTPUT)
VARS
  x : %s;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    x *= alpha;
    X[0] = x;
    X += 1;
  LOOP_END
END
|}
      n p p p
  | Copy ->
    Printf.sprintf
      {|KERNEL %s(N : int, X : ptr %s, Y : ptr %s OUTPUT)
VARS
  x : %s;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    Y[0] = x;
    X += 1;
    Y += 1;
  LOOP_END
END
|}
      n p p p
  | Axpy ->
    Printf.sprintf
      {|KERNEL %s(N : int, alpha : %s, X : ptr %s, Y : ptr %s OUTPUT)
VARS
  x, y : %s;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    y = Y[0];
    y += alpha * x;
    Y[0] = y;
    X += 1;
    Y += 1;
  LOOP_END
END
|}
      n p p p p
  | Dot ->
    Printf.sprintf
      {|KERNEL %s(N : int, X : ptr %s, Y : ptr %s) RETURNS %s
VARS
  dot : %s = 0.0;
  x, y : %s;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    y = Y[0];
    dot += x * y;
    X += 1;
    Y += 1;
  LOOP_END
  RETURN dot;
END
|}
      n p p p p p
  | Asum ->
    Printf.sprintf
      {|KERNEL %s(N : int, X : ptr %s) RETURNS %s
VARS
  sum : %s = 0.0;
  x : %s;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    x = ABS x;
    sum += x;
    X += 1;
  LOOP_END
  RETURN sum;
END
|}
      n p p p p
  | Iamax ->
    Printf.sprintf
      {|KERNEL %s(N : int, X : ptr %s) RETURNS int
VARS
  amax, x : %s = -1.0;
  imax : int = 0;
BEGIN
  OPTLOOP i = N, 0, -1
  LOOP_BODY
    x = X[0];
    x = ABS x;
    IF (x > amax) GOTO NEWMAX;
    ENDOFLOOP:
    X += 1;
  LOOP_END
  RETURN imax;
  NEWMAX:
  amax = x;
  imax = N - i;
  GOTO ENDOFLOOP;
END
|}
      n p p

(* The "more straightforward implementation" of iamax (paper §3.2.1):
   a scoped conditional in the loop, as the ANSI C reference has it.
   The paper used this variant for icc and gcc because the Figure 6(b)
   branch-out-of-line formulation depressed icc's performance. *)
let straightforward_iamax ({ routine; prec } as id) =
  assert (routine = Iamax);
  let p = prec_name prec in
  Printf.sprintf
    {|KERNEL %s(N : int, X : ptr %s) RETURNS int
VARS
  amax, x : %s = -1.0;
  imax : int = 0;
BEGIN
  OPTLOOP i = 0, N
  LOOP_BODY
    x = X[0];
    x = ABS x;
    IF (x > amax) THEN
      amax = x;
      imax = i;
    ENDIF
    X += 1;
  LOOP_END
  RETURN imax;
END
|}
    (name id) p p

(* The straightforward formulation with the SPECULATE mark-up: the
   user-assisted path that lets FKO vectorize iamax after all. *)
let speculative_iamax id =
  let src = straightforward_iamax id in
  (* the mark-up goes on the OPTLOOP header *)
  Str_replace.first src "OPTLOOP i = 0, N" "OPTLOOP i = 0, N SPECULATE"

let compile id =
  source id |> Ifko_hil.Parser.parse_kernel |> Ifko_hil.Typecheck.check
  |> Ifko_codegen.Lower.lower

let compile_straightforward id =
  straightforward_iamax id |> Ifko_hil.Parser.parse_kernel |> Ifko_hil.Typecheck.check
  |> Ifko_codegen.Lower.lower

let compile_speculative id =
  speculative_iamax id |> Ifko_hil.Parser.parse_kernel |> Ifko_hil.Typecheck.check
  |> Ifko_codegen.Lower.lower
