lib/sim/verify.mli: Cfg Env Exec Instr Stdlib
