lib/hil/builder.ml: Ast
