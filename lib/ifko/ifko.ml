(** The public façade of the ifko framework.

    This module wires the paper's Figure 1 together: HIL source in,
    analysis out to the search, iterative tuning over the FKO backend
    with timers and testers, optimized kernel out.  The submodule
    aliases expose the full library surface for users who need the
    pieces individually. *)

module Hil = struct
  module Ast = Ifko_hil.Ast
  module Lexer = Ifko_hil.Lexer
  module Parser = Ifko_hil.Parser
  module Typecheck = Ifko_hil.Typecheck
  module Pp = Ifko_hil.Pp
  module Builder = Ifko_hil.Builder
end

module Lower = Ifko_codegen.Lower
module Loopnest = Ifko_codegen.Loopnest
module Report = Ifko_analysis.Report
module Dataflow = Ifko_analysis.Dataflow
module Diag = Ifko_analysis.Diag
module Lint = Ifko_analysis.Lint
module Absint = Ifko_analysis.Absint
module Depend = Ifko_analysis.Depend
module Legality = Ifko_analysis.Legality
module Ptrinfo = Ifko_analysis.Ptrinfo
module Passcheck = Ifko_transform.Passcheck
module Params = Ifko_transform.Params
module Pipeline = Ifko_transform.Pipeline
module Config = Ifko_machine.Config
module Memsys = Ifko_machine.Memsys
module Env = Ifko_sim.Env
module Exec = Ifko_sim.Exec
module Timer = Ifko_sim.Timer
module Ckpt = Ifko_sim.Ckpt
module Verify = Ifko_sim.Verify
module Search = Ifko_search.Linesearch
module Space = Ifko_search.Space
module Strategy = Ifko_search.Strategy
module Surrogate = Ifko_search.Surrogate
module Warmstart = Ifko_search.Warmstart
module Driver = Ifko_search.Driver
module Generic = Ifko_search.Generic
module Store = Ifko_store.Store
module Par = Ifko_par.Par

(** Tuning as a service: the `ifko serve` daemon, its wire protocol,
    the key-prefix-sharded probe store underneath it, and the blocking
    client. *)
module Serve = struct
  module Proto = Ifko_serve.Proto
  module Shard_store = Ifko_serve.Shard_store
  module Server = Ifko_serve.Server
  module Client = Ifko_serve.Client
end

(** Differential fuzzing of the full pipeline (generator, parameter
    sampler, oracle, shrinker, reproducer corpus). *)
module Fuzz = struct
  module Gen = Ifko_fuzz.Gen
  module Sample = Ifko_fuzz.Sample
  module Oracle = Ifko_fuzz.Oracle
  module Shrink = Ifko_fuzz.Shrink
  module Corpus = Ifko_fuzz.Corpus
  include Ifko_fuzz.Fuzz
end
module Blas = struct
  module Defs = Ifko_blas.Defs
  module Ref_impl = Ifko_blas.Ref_impl
  module Hil_sources = Ifko_blas.Hil_sources
  module Workload = Ifko_blas.Workload
  module Extras = Ifko_blas.Extras
end

(** The paper's future-work transformations, individually accessible
    (the pipeline applies them via {!Params.t.bf}, {!Params.t.cisc} and
    the [SPECULATE] mark-up). *)
module Extensions = struct
  module Blockfetch = Ifko_transform.Blockfetch
  module Ciscidx = Ifko_transform.Ciscidx
  module Maxloc = Ifko_transform.Maxloc
end
module Baselines = struct
  module Compiler_model = Ifko_baselines.Compiler_model
  module Atlas_kernels = Ifko_baselines.Atlas_kernels
  module Atlas_search = Ifko_baselines.Atlas_search
end

(** [compile_source src] parses, checks and lowers a HIL kernel. *)
let compile_source src =
  src |> Ifko_hil.Parser.parse_kernel |> Ifko_hil.Typecheck.check |> Lower.lower

(** [analyze compiled] runs FKO's analysis phase — what the compiler
    reports back to the search. *)
let analyze = Report.analyze

(** [default_params ~cfg compiled] is FKO's non-empirical default point
    for the kernel on the given machine. *)
let default_params ~cfg compiled =
  Params.default ~line_bytes:cfg.Config.prefetchable_line (analyze compiled)

(** [compile_point ~cfg compiled params] is one FKO invocation: apply
    the transformations, allocate registers, return runnable code. *)
let compile_point ~cfg compiled params =
  Driver.compile_point ~cfg compiled params

(** [tune] is the full iterative and empirical compilation (analysis,
    modified line search with testers and timers). *)
let tune = Driver.tune
