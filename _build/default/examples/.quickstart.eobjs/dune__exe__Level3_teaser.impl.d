examples/level3_teaser.ml: Defs Hil_sources Ifko Ifko_util Instr List Printf Workload
