open Ifko_machine

type tuned = {
  report : Ifko_analysis.Report.t;
  default_params : Ifko_transform.Params.t;
  best_params : Ifko_transform.Params.t;
  fko_mflops : float;
  ifko_mflops : float;
  best_func : Cfg.func;
  contributions : (string * float) list;
  evaluations : int;
}

let compile_point ?check ~cfg compiled params =
  let c =
    Ifko_transform.Pipeline.apply ?check ~line_bytes:cfg.Config.prefetchable_line compiled
      params
  in
  c.Ifko_codegen.Lower.func

(* Small deterministic workloads for per-pass translation validation:
   a remainder-heavy size and one spanning several unrolled bodies. *)
let check_sizes = [ 5; 34 ]

(* Everything a probe outcome depends on, rendered for content
   addressing: the untransformed lowered LIL plus the array metadata
   the transformations and the prefetch search consume.  Editing the
   kernel source changes this, so stale store entries simply miss. *)
let kernel_fingerprint (compiled : Ifko_codegen.Lower.compiled) =
  let arrays =
    String.concat ";"
      (List.map
         (fun (a : Ifko_codegen.Lower.array_param) ->
           Printf.sprintf "%s:%s%s%s" a.Ifko_codegen.Lower.a_name
             (match a.Ifko_codegen.Lower.a_elem with Instr.S -> "s" | Instr.D -> "d")
             (if a.Ifko_codegen.Lower.a_output then ":out" else "")
             ((if a.Ifko_codegen.Lower.a_noprefetch then ":nopf" else "")
             ^ if a.Ifko_codegen.Lower.a_mayalias then ":alias" else ""))
         compiled.Ifko_codegen.Lower.arrays)
  in
  Printf.sprintf "%s\n%s\n%s"
    compiled.Ifko_codegen.Lower.source.Ifko_hil.Ast.k_name arrays
    (Cfg.to_string compiled.Ifko_codegen.Lower.func)

let score = function
  | Ifko_store.Store.Timed { mflops; _ } -> mflops
  | Ifko_store.Store.Test_failed | Ifko_store.Store.Illegal -> neg_infinity

let tune ?(extensions = false) ?(check_each_pass = false) ?store ?cache ?pool ?(jobs = 1)
    ?(seed = 0) ~cfg ~context ~spec ~n ~flops_per_n ~test compiled =
  let report = Ifko_analysis.Report.analyze compiled in
  let default_params =
    Ifko_transform.Params.default ~line_bytes:cfg.Config.prefetchable_line report
  in
  let check =
    if not check_each_pass then None
    else
      Some
        (Ifko_transform.Passcheck.of_envs ~line_bytes:cfg.Config.prefetchable_line
           ~ret_fsize:spec.Ifko_sim.Timer.ret_fsize
           (List.map (fun n () -> spec.Ifko_sim.Timer.make_env n) check_sizes))
  in
  let kernel = kernel_fingerprint compiled in
  let prov =
    Printf.sprintf "%s@%s/%s/n=%d"
      compiled.Ifko_codegen.Lower.source.Ifko_hil.Ast.k_name cfg.Config.name
      (Ifko_sim.Timer.context_name context) n
  in
  (* Functions compiled (and validated) by this run's probes, kept so
     the winning point's code is reused instead of being recompiled —
     and recompiled *unchecked* — at the end. *)
  let funcs : (Ifko_transform.Params.t, Cfg.func) Hashtbl.t = Hashtbl.create 64 in
  let funcs_mutex = Mutex.create () in
  let compute params =
    match compile_point ?check ~cfg compiled params with
    | exception (Ifko_transform.Passcheck.Pass_failed _ as broken) ->
      raise broken (* fail fast: a transform miscompiled this point *)
    | exception _ -> Ifko_store.Store.Illegal (* an illegal point is just skipped *)
    | func ->
      Mutex.lock funcs_mutex;
      Hashtbl.replace funcs params func;
      Mutex.unlock funcs_mutex;
      if not (test func) then Ifko_store.Store.Test_failed
      else
        (* decode once per candidate; the timer reuses the threaded
           code across extrapolation samples and reps *)
        let cf = Ifko_sim.Exec.compile func in
        let cycles = Ifko_sim.Timer.measure_compiled ~cfg ~context ~spec ~n cf in
        Ifko_store.Store.Timed
          { cycles; mflops = Ifko_sim.Timer.mflops ~cfg ~flops_per_n ~n ~cycles }
  in
  (* [cache] generalizes the plain store: the serve daemon passes the
     sharded store's single-flight memoizer here, so concurrent tunes
     of the same kernel share in-flight probe computations. *)
  let cached =
    match cache with
    | Some c -> c
    | None ->
      fun ~key ~params ~prov f -> Ifko_store.Store.cached ?store ~key ~params ~prov f
  in
  let probe params =
    let key =
      Ifko_store.Store.probe_key ~kernel ~machine:cfg.Config.name
        ~context:(Ifko_sim.Timer.context_name context) ~n ~seed ~check:check_each_pass
        ~params:(Ifko_transform.Params.canonical params)
    in
    score
      (cached ~key ~params:(Ifko_transform.Params.to_string params) ~prov (fun () ->
           compute params))
  in
  let search map_batch =
    Linesearch.run ~extensions ?map_batch ~cfg ~report ~init:default_params probe
  in
  let result =
    match pool with
    | Some pool -> search (Some (fun f xs -> Ifko_par.Par.Pool.map pool f xs))
    | None ->
      if jobs <= 1 then search None
      else
        Ifko_par.Par.Pool.with_pool ~jobs (fun pool ->
            search (Some (fun f xs -> Ifko_par.Par.Pool.map pool f xs)))
  in
  let best = result.Linesearch.best in
  let best_func =
    match Hashtbl.find_opt funcs best with
    | Some func -> func
    | None ->
      (* every probe of this run was answered from the store — compile
         the winner once, under the same per-pass checking regime *)
      compile_point ?check ~cfg compiled best
  in
  {
    report;
    default_params;
    best_params = best;
    fko_mflops = result.Linesearch.start_perf;
    ifko_mflops = result.Linesearch.best_perf;
    best_func;
    contributions = result.Linesearch.contributions;
    evaluations = result.Linesearch.evaluations;
  }
